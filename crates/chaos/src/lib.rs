//! # ntt-chaos
//!
//! Deterministic fault injection for the NTT workspace: seed-driven
//! schedules of worker panics, injected latency, read corruption, and
//! queue stalls, behind a kill switch that compiles every call site
//! down to **one relaxed load** when chaos is off (the same discipline
//! as `ntt-obs`'s `NTT_OBS` switch).
//!
//! The plane exists so the serving stack's recovery paths — worker
//! respawn, load shedding, checkpoint last-good retention, shard retry
//! — are exercised by *replayable* failures: every injection decision
//! is a pure function of `(plan seed, site, key)`, never of the clock
//! or ambient entropy, so a chaos run reproduces from its seed alone
//! and passes `ntt-lint`'s no-wall-clock / no-entropy rules.
//!
//! ```
//! use ntt_chaos::{ChaosPlan, FaultKind, Rule};
//!
//! // Every shard whose (seed, site, key) hash says so fails — twice
//! // out of three keys here — and the trace records each injection.
//! let guard = ntt_chaos::scoped(
//!     ChaosPlan::new(42).rule(Rule::new("demo.step", FaultKind::Fail).rate(2, 3)),
//! );
//! let failed: Vec<u64> = (0..12u64)
//!     .filter(|&k| ntt_chaos::should_fail_keyed("demo.step", k))
//!     .collect();
//! assert!(!failed.is_empty());
//! let trace = guard.finish();
//! assert_eq!(trace.len(), failed.len());
//! ```
//!
//! # Sites
//!
//! A *site* is a stable string naming one instrumented failure point
//! (`serve.worker.panic`, `core.checkpoint.read`, `fleet.shard`, ...).
//! Call sites use the class-specific helpers — [`maybe_panic`],
//! [`maybe_delay`], [`should_fail`] / [`should_fail_keyed`],
//! [`mangle`] — which no-op unless an installed rule of the matching
//! fault class targets that site.
//!
//! # Activation
//!
//! Chaos is **off by default**. Enable it programmatically with
//! [`install`] / [`scoped`] (tests), or process-wide with the
//! `NTT_CHAOS` environment spec (see [`plan::parse_spec`]):
//!
//! ```text
//! NTT_CHAOS="seed=42,serve.worker.panic=panic:1/8,core.checkpoint.read=corrupt:1/2x3"
//! ```

mod plan;
pub mod trace;

pub use plan::{parse_spec, ChaosPlan, FaultKind, Rule};
pub use trace::{ChaosEvent, ChaosReport};

use plan::Class;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, RwLock};

/// 0 = uninitialized, 1 = enabled (a plan is installed), 2 = disabled.
static ENABLED: AtomicU8 = AtomicU8::new(0);

fn slot() -> &'static RwLock<Option<Arc<ChaosPlan>>> {
    static PLAN: OnceLock<RwLock<Option<Arc<ChaosPlan>>>> = OnceLock::new();
    PLAN.get_or_init(|| RwLock::new(None))
}

/// Whether a fault plan is installed — the hot-path guard: one relaxed
/// load and a compare. The first call resolves the `NTT_CHAOS`
/// environment spec (a malformed spec panics loudly rather than
/// silently running without the faults the operator asked for).
#[inline]
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => init_from_env(),
    }
}

#[cold]
fn init_from_env() -> bool {
    let raw = std::env::var("NTT_CHAOS").ok();
    match parse_spec(raw.as_deref()) {
        Ok(Some(plan)) => {
            install(plan);
            true
        }
        Ok(None) => {
            ENABLED.store(2, Ordering::Relaxed);
            false
        }
        Err(e) => panic!("invalid NTT_CHAOS spec: {e}"),
    }
}

/// Install `plan` process-wide and clear the fault trace. Prefer
/// [`scoped`] in tests — it serializes chaos users and uninstalls on
/// drop.
pub fn install(plan: ChaosPlan) {
    let mut slot = slot().write().unwrap_or_else(|e| e.into_inner());
    trace::clear();
    *slot = Some(Arc::new(plan));
    ENABLED.store(1, Ordering::Relaxed);
}

/// Remove any installed plan: every site compiles back down to the
/// one-relaxed-load fast path.
pub fn uninstall() {
    let mut slot = slot().write().unwrap_or_else(|e| e.into_inner());
    *slot = None;
    ENABLED.store(2, Ordering::Relaxed);
}

/// The installed plan, if any.
pub fn active() -> Option<Arc<ChaosPlan>> {
    if !enabled() {
        return None;
    }
    slot().read().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Injection accounting for the installed plan (empty when chaos is
/// off).
pub fn report() -> ChaosReport {
    let mut out = ChaosReport::default();
    if let Some(plan) = active() {
        out.seed = plan.seed;
        for rule in &plan.rules {
            let entry = out
                .rules
                .entry((rule.site.clone(), rule.kind.label()))
                .or_insert((0, 0));
            entry.0 += rule.hit_count();
            entry.1 += rule.injected_count();
        }
    }
    out
}

/// Serializes chaos-driven tests (global plan, global trace) and
/// uninstalls on drop. Holding it is the license to mutate process-wide
/// chaos state.
pub struct ScopedChaos {
    _serial: MutexGuard<'static, ()>,
}

/// Install `plan` for the lifetime of the returned guard. Tests in one
/// binary serialize on an internal mutex, so concurrently scheduled
/// chaos tests never see each other's faults.
pub fn scoped(plan: ChaosPlan) -> ScopedChaos {
    static SERIAL: Mutex<()> = Mutex::new(());
    // A panicking chaos test (some *expect* panics) poisons the mutex;
    // the serialization it provides is unaffected.
    let serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    install(plan);
    ScopedChaos { _serial: serial }
}

impl ScopedChaos {
    /// End the scope early and return the sorted fault trace.
    pub fn finish(self) -> Vec<ChaosEvent> {
        let out = trace::take();
        drop(self);
        out
    }
}

impl Drop for ScopedChaos {
    fn drop(&mut self) {
        uninstall();
    }
}

#[inline]
fn decide(site: &str, key: Option<u64>, class: Class) -> Option<FaultKind> {
    if !enabled() {
        return None;
    }
    decide_slow(site, key, class)
}

#[cold]
fn decide_slow(site: &str, key: Option<u64>, class: Class) -> Option<FaultKind> {
    let plan = slot().read().unwrap_or_else(|e| e.into_inner()).clone()?;
    plan.decide(site, key, class)
}

/// Panic here if an installed `Panic` rule targets `site` and its
/// schedule fires on this hit. One relaxed load when chaos is off.
#[inline]
pub fn maybe_panic(site: &str) {
    if decide(site, None, Class::Panic).is_some() {
        panic!("chaos: injected panic at {site}");
    }
}

/// Sleep here if an installed `Delay` rule targets `site` and fires
/// (injected latency / queue stall). Sleeping reads no clock, so the
/// fault plane stays inside the lint rules.
#[inline]
pub fn maybe_delay(site: &str) {
    if let Some(FaultKind::Delay { millis }) = decide(site, None, Class::Delay) {
        std::thread::sleep(std::time::Duration::from_millis(millis));
    }
}

/// True if an installed `Fail` rule targets `site` and fires on this
/// hit (hit-counter keyed).
#[inline]
pub fn should_fail(site: &str) -> bool {
    decide(site, None, Class::Fail).is_some()
}

/// True if an installed `Fail` rule targets `site` and fires for
/// `key`. The decision is a pure function of `(seed, site, key)` —
/// use this wherever the caller owns a deterministic key (shard index,
/// attempt number) so the fault schedule is thread-count invariant.
#[inline]
pub fn should_fail_keyed(site: &str, key: u64) -> bool {
    decide(site, Some(key), Class::Fail).is_some()
}

/// Corrupt or truncate a just-read buffer if a `Corrupt`/`Truncate`
/// rule targets `site` and fires. Returns `true` when the buffer was
/// mangled. The flipped byte / cut point derive from the plan seed, so
/// the damage replays exactly.
#[inline]
pub fn mangle(site: &str, bytes: &mut Vec<u8>) -> bool {
    match decide(site, None, Class::Mangle) {
        Some(kind) => mangle_with(site, kind, bytes),
        None => false,
    }
}

#[cold]
fn mangle_with(site: &str, kind: FaultKind, bytes: &mut Vec<u8>) -> bool {
    if bytes.is_empty() {
        return false;
    }
    let plan = match active() {
        Some(p) => p,
        None => return false,
    };
    let mut s = plan.seed ^ plan::fnv1a(site.as_bytes()) ^ 0x6d61_6e67_6c65; // "mangle"
    let r = plan::splitmix64(&mut s);
    match kind {
        FaultKind::Corrupt => {
            let off = (r as usize) % bytes.len();
            // XOR with a nonzero pattern so the byte always changes.
            bytes[off] ^= 0x5A;
            true
        }
        FaultKind::Truncate => {
            // Keep a seed-chosen prefix strictly shorter than the file.
            let keep = (r as usize) % bytes.len();
            bytes.truncate(keep);
            true
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plane_injects_nothing() {
        let _guard = scoped(ChaosPlan::new(1).rule(Rule::new("t.site", FaultKind::Fail)));
        uninstall();
        assert!(!enabled());
        assert!(!should_fail("t.site"));
        maybe_panic("t.site"); // must not panic
        maybe_delay("t.site");
        let mut buf = vec![1u8, 2, 3];
        assert!(!mangle("t.site", &mut buf));
        assert_eq!(buf, vec![1, 2, 3]);
        assert_eq!(report(), ChaosReport::default());
    }

    #[test]
    fn rules_only_fire_at_their_site_and_class() {
        let guard = scoped(ChaosPlan::new(2).rule(Rule::new("t.fail", FaultKind::Fail)));
        assert!(should_fail("t.fail"));
        assert!(!should_fail("t.other"), "wrong site never fires");
        maybe_panic("t.fail"); // a Fail rule must not drive a panic site
        let mut buf = vec![0u8; 8];
        assert!(!mangle("t.fail", &mut buf), "a Fail rule must not mangle");
        let trace = guard.finish();
        assert!(trace.iter().all(|e| e.site == "t.fail" && e.kind == "fail"));
    }

    #[test]
    #[should_panic(expected = "chaos: injected panic at t.boom")]
    fn panic_rule_panics() {
        let _guard = scoped(ChaosPlan::new(3).rule(Rule::new("t.boom", FaultKind::Panic)));
        maybe_panic("t.boom");
    }

    #[test]
    fn keyed_schedule_replays_from_seed() {
        let run = || {
            let guard =
                scoped(ChaosPlan::new(77).rule(Rule::new("t.keyed", FaultKind::Fail).rate(1, 4)));
            let hits: Vec<u64> = (0..100u64)
                .filter(|&k| should_fail_keyed("t.keyed", k))
                .collect();
            (hits, guard.finish())
        };
        let (hits_a, trace_a) = run();
        let (hits_b, trace_b) = run();
        assert_eq!(hits_a, hits_b, "same seed, same faulted keys");
        assert_eq!(trace_a, trace_b, "same seed, same fault trace");
        assert!(!hits_a.is_empty() && hits_a.len() < 100);
        // And the trace records exactly the faulted keys.
        let keys: Vec<u64> = trace_a.iter().map(|e| e.key).collect();
        assert_eq!(keys, hits_a);
    }

    #[test]
    fn limit_caps_injections() {
        let guard = scoped(
            ChaosPlan::new(4).rule(Rule::new("t.capped", FaultKind::Fail).rate(1, 1).limit(3)),
        );
        let fired = (0..10).filter(|_| should_fail("t.capped")).count();
        assert_eq!(fired, 3, "always-fire rule limited to 3 injections");
        let rep = report();
        assert_eq!(rep.rules[&("t.capped".into(), "fail")], (10, 3));
        drop(guard);
    }

    #[test]
    fn mangle_corrupts_and_truncates_deterministically() {
        let pristine: Vec<u8> = (0..64u8).collect();
        let corrupt = |seed: u64| {
            let _g = scoped(ChaosPlan::new(seed).rule(Rule::new("t.read", FaultKind::Corrupt)));
            let mut b = pristine.clone();
            assert!(mangle("t.read", &mut b));
            b
        };
        let a = corrupt(5);
        assert_eq!(a, corrupt(5), "same seed, same damage");
        assert_eq!(a.len(), pristine.len());
        assert_eq!(
            a.iter().zip(&pristine).filter(|(x, y)| x != y).count(),
            1,
            "corrupt flips exactly one byte"
        );

        let _g = scoped(ChaosPlan::new(6).rule(Rule::new("t.read", FaultKind::Truncate)));
        let mut b = pristine.clone();
        assert!(mangle("t.read", &mut b));
        assert!(b.len() < pristine.len(), "truncate drops the tail");
        assert_eq!(b[..], pristine[..b.len()], "prefix survives intact");
    }

    #[test]
    fn env_spec_parse_is_the_install_path() {
        // The env hook itself is process-global (first `enabled()`
        // wins), so here we only pin that the parser output installs
        // and drives sites exactly like a hand-built plan.
        let plan = parse_spec(Some("seed=11,t.env=fail:1/2")).unwrap().unwrap();
        let guard = scoped(plan);
        let fired = (0..50u64)
            .filter(|&k| should_fail_keyed("t.env", k))
            .count();
        assert!(fired > 0 && fired < 50);
        let rep = report();
        assert_eq!(rep.seed, 11);
        assert_eq!(rep.injected_total(), fired as u64);
        drop(guard);
    }
}
