//! The fault trace: every injected fault, replayable and comparable.
//!
//! Chaos tests assert determinism by comparing traces: the same plan
//! seed must inject the same faults. Because keyless sites hand out hit
//! indices in arrival order, the *global* order of trace events can
//! race under threads — but the `(site, key, kind)` triples themselves
//! are a pure function of the seed, so [`take`] returns the trace
//! **sorted**, which is the thread-count-invariant view.

use crate::plan::FaultKind;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Mutex, OnceLock};

/// One injected fault.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct ChaosEvent {
    pub site: String,
    pub key: u64,
    /// Stable kind label (`panic`, `delay`, `fail`, `corrupt`,
    /// `truncate`).
    pub kind: &'static str,
}

fn events() -> &'static Mutex<Vec<ChaosEvent>> {
    static EVENTS: OnceLock<Mutex<Vec<ChaosEvent>>> = OnceLock::new();
    EVENTS.get_or_init(|| Mutex::new(Vec::new()))
}

pub(crate) fn record(site: &str, key: u64, kind: FaultKind) {
    let mut ev = events().lock().unwrap_or_else(|e| e.into_inner());
    ev.push(ChaosEvent {
        site: site.to_string(),
        key,
        kind: kind.label(),
    });
}

/// Drain the fault trace, sorted by `(site, key, kind)` — the
/// deterministic, thread-order-independent view.
pub fn take() -> Vec<ChaosEvent> {
    let mut ev = events().lock().unwrap_or_else(|e| e.into_inner());
    let mut out = std::mem::take(&mut *ev);
    out.sort();
    out
}

pub(crate) fn clear() {
    events().lock().unwrap_or_else(|e| e.into_inner()).clear();
}

/// Injection accounting for one plan run: per-(site, kind) hit and
/// injection counts, exportable as JSON for the `CHAOS.json` artifact.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosReport {
    pub seed: u64,
    /// `(site, kind label) -> (hits, injected)`, sorted by key.
    pub rules: BTreeMap<(String, &'static str), (u64, u64)>,
}

impl ChaosReport {
    pub fn injected_total(&self) -> u64 {
        self.rules.values().map(|&(_, inj)| inj).sum()
    }

    /// Render as a JSON object (same hand-rolled style as the bench
    /// artifacts — no serde in the workspace).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        let _ = writeln!(s, "  \"seed\": {},", self.seed);
        let _ = writeln!(s, "  \"injected_total\": {},", self.injected_total());
        let _ = writeln!(s, "  \"rules\": [");
        for (i, ((site, kind), (hits, injected))) in self.rules.iter().enumerate() {
            let _ = writeln!(
                s,
                "    {{\"site\": {site:?}, \"kind\": {kind:?}, \"hits\": {hits}, \
                 \"injected\": {injected}}}{}",
                if i + 1 == self.rules.len() { "" } else { "," }
            );
        }
        s.push_str("  ]\n}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_is_well_formed() {
        let mut r = ChaosReport {
            seed: 9,
            ..Default::default()
        };
        r.rules.insert(("a.b".into(), "panic"), (10, 2));
        r.rules.insert(("c.d".into(), "fail"), (4, 4));
        assert_eq!(r.injected_total(), 6);
        let json = r.to_json();
        assert!(json.contains("\"seed\": 9"));
        assert!(json.contains("\"injected_total\": 6"));
        assert!(json.contains("\"site\": \"a.b\""));
        assert!(json.ends_with('}'));
    }
}
