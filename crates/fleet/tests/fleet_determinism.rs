//! The fleet's core guarantee: thread count is invisible in the output.
//! An 8-shard grid run on 1 thread and on 4+ threads must produce
//! byte-identical trace sets, and streaming ingestion must match the
//! batch path.

use ntt_data::TraceData;
use ntt_fleet::{
    run_fleet, run_fleet_dataset, run_fleet_traces, run_many_parallel, FleetConfig, SeedSchedule,
    StreamToData, SweepSpec,
};
use ntt_sim::scenarios::{Scenario, ScenarioConfig};
use ntt_sim::SimTime;

/// A fast config: full tiny topology, short runs.
fn fast_cfg(seed: u64) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::tiny(seed);
    cfg.duration = SimTime::from_millis(800);
    cfg.drain = SimTime::from_millis(200);
    cfg
}

/// 2 scenarios x 2 loads x 2 runs = 8 shards over 3 topology families.
fn grid() -> SweepSpec {
    SweepSpec::new(fast_cfg(42))
        .scenarios(vec![
            Scenario::ParkingLot { hops: 4 },
            Scenario::LeafSpine {
                leaves: 3,
                spines: 2,
            },
        ])
        .load_factors(vec![0.6, 1.0])
        .runs_per_cell(2)
}

#[test]
fn eight_shards_identical_on_one_and_four_threads() {
    let spec = grid();
    assert_eq!(spec.len(), 8, "acceptance criterion wants >= 8 shards");
    let (serial, serial_report) = run_fleet_traces(&spec, &FleetConfig::with_threads(1));
    let (parallel, parallel_report) = run_fleet_traces(&spec, &FleetConfig::with_threads(4));

    assert_eq!(serial_report.threads, 1);
    assert_eq!(parallel_report.threads, 4);
    assert_eq!(serial.len(), 8);
    assert_eq!(parallel.len(), 8);
    for (i, (a, b)) in serial.iter().zip(parallel.iter()).enumerate() {
        assert_eq!(a.events, b.events, "shard {i} event count differs");
        assert_eq!(a.drops, b.drops, "shard {i} drop count differs");
        assert_eq!(a.packets, b.packets, "shard {i} packet records differ");
        assert_eq!(a.messages, b.messages, "shard {i} message records differ");
    }
    // The grid must actually produce diverse shards, not 8 copies.
    let sizes: std::collections::HashSet<usize> = serial.iter().map(|t| t.packets.len()).collect();
    assert!(
        sizes.len() >= 4,
        "shards should differ across the grid: {sizes:?}"
    );
}

#[test]
fn run_many_parallel_matches_the_serial_reference() {
    // The legacy `run_many` contract, spelled out as an inline serial
    // loop (seeds `cfg.seed, cfg.seed+1, ...`): the parallel path must
    // reproduce it byte for byte at any thread count.
    let cfg = fast_cfg(7);
    let serial: Vec<_> = (0..3u64)
        .map(|i| {
            let mut c = cfg;
            c.seed = cfg.seed + i;
            ntt_sim::scenarios::run(Scenario::Case1, &c)
        })
        .collect();
    let fleet = run_many_parallel(Scenario::Case1, &cfg, 3, 4);
    assert_eq!(serial.len(), fleet.len());
    for (a, b) in serial.iter().zip(fleet.iter()) {
        assert_eq!(a.packets, b.packets);
        assert_eq!(a.messages, b.messages);
        assert_eq!(a.events, b.events);
    }
}

#[test]
fn streaming_ingestion_matches_batch_construction() {
    let spec = SweepSpec::new(fast_cfg(3))
        .scenarios(vec![Scenario::Pretrain, Scenario::Case1])
        .runs_per_cell(2);
    let (streamed, _) = run_fleet_dataset(&spec, &FleetConfig::default());
    let (traces, _) = run_fleet_traces(&spec, &FleetConfig::default());
    let batch = TraceData::from_traces(&traces);

    assert_eq!(streamed.runs.len(), batch.runs.len());
    assert_eq!(streamed.n_packets(), batch.n_packets());
    assert_eq!(streamed.n_messages(), batch.n_messages());
    for (rs, rb) in streamed.runs.iter().zip(batch.runs.iter()) {
        assert_eq!(rs.pkts.len(), rb.pkts.len());
        assert_eq!(rs.anchors.len(), rb.anchors.len());
        for (ps, pb) in rs.pkts.iter().zip(rb.pkts.iter()) {
            assert_eq!(ps.t, pb.t);
            assert_eq!(ps.delay, pb.delay);
            assert_eq!(ps.size, pb.size);
            assert_eq!(ps.receiver, pb.receiver);
        }
    }
}

#[test]
fn spilled_shards_reload_to_the_same_traces() {
    let dir = std::env::temp_dir().join(format!("ntt-fleet-spill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let spec = SweepSpec::new(fast_cfg(5)).runs_per_cell(2);

    let mut sink = StreamToData::with_spill_dir(&dir);
    let report = run_fleet(&spec, &FleetConfig::default(), &mut sink);
    assert!(
        sink.spill_error.is_none(),
        "spill failed: {:?}",
        sink.spill_error
    );

    let (traces, _) = run_fleet_traces(&spec, &FleetConfig::default());
    for (shard, trace) in spec.expand().iter().zip(traces.iter()) {
        let loaded = ntt_sim::persist::load_trace(dir.join(StreamToData::spill_stem(shard)))
            .expect("spilled shard must reload");
        assert_eq!(loaded.packets, trace.packets);
        assert_eq!(loaded.messages, trace.messages);
    }
    assert_eq!(report.shards.len(), 2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn seed_schedules_produce_different_but_reproducible_grids() {
    let spec = grid();
    let mixed: Vec<u64> = spec.expand().iter().map(|s| s.cfg.seed).collect();
    let sequential: Vec<u64> = spec
        .clone()
        .seed_schedule(SeedSchedule::Sequential)
        .expand()
        .iter()
        .map(|s| s.cfg.seed)
        .collect();
    assert_ne!(mixed, sequential);
    assert_eq!(
        mixed,
        grid()
            .expand()
            .iter()
            .map(|s| s.cfg.seed)
            .collect::<Vec<_>>()
    );
}
