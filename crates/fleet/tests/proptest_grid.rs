//! Property-based tests of grid expansion: per-shard seeds are unique,
//! expansion size matches the spec, and loads scale the right fields.

use ntt_fleet::{SeedSchedule, SweepSpec};
use ntt_sim::scenarios::{Scenario, ScenarioConfig};
use proptest::prelude::*;

fn spec(base_seed: u64, n_scenarios: usize, n_loads: usize, runs: usize, mixed: bool) -> SweepSpec {
    let all = [
        Scenario::Pretrain,
        Scenario::Case1,
        Scenario::Case2,
        Scenario::ParkingLot { hops: 5 },
        Scenario::LeafSpine {
            leaves: 4,
            spines: 2,
        },
    ];
    SweepSpec::new(ScenarioConfig::tiny(0))
        .scenarios(all[..n_scenarios].to_vec())
        .load_factors((1..=n_loads).map(|i| i as f64 * 0.5).collect())
        .runs_per_cell(runs)
        .base_seed(base_seed)
        .seed_schedule(if mixed {
            SeedSchedule::Mixed
        } else {
            SeedSchedule::Sequential
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_shard_gets_a_unique_seed(
        base_seed in 0u64..u64::MAX / 2,
        n_scenarios in 1usize..=5,
        n_loads in 1usize..=4,
        runs in 1usize..=6,
        mixed in any::<bool>(),
    ) {
        let s = spec(base_seed, n_scenarios, n_loads, runs, mixed);
        let shards = s.expand();
        prop_assert_eq!(shards.len(), n_scenarios * n_loads * runs);
        prop_assert_eq!(shards.len(), s.len());
        let seeds: std::collections::HashSet<u64> =
            shards.iter().map(|sh| sh.cfg.seed).collect();
        prop_assert_eq!(
            seeds.len(), shards.len(),
            "seed collision in {} shards (schedule mixed={})", shards.len(), mixed
        );
    }

    #[test]
    fn load_factors_scale_both_traffic_rates(
        base_seed in 0u64..1000,
        n_loads in 1usize..=4,
    ) {
        let s = spec(base_seed, 2, n_loads, 2, true);
        let base = ScenarioConfig::tiny(0);
        for shard in s.expand() {
            let expected_fg = base.sender_rate_bps * shard.load_factor;
            let expected_x = base.cross_rate_bps * shard.load_factor;
            prop_assert!((shard.cfg.sender_rate_bps - expected_fg).abs() < 1e-6);
            prop_assert!((shard.cfg.cross_rate_bps - expected_x).abs() < 1e-6);
        }
    }

    #[test]
    fn expansion_is_a_pure_function_of_the_spec(
        base_seed in 0u64..10_000,
        runs in 1usize..=5,
    ) {
        let s = spec(base_seed, 3, 2, runs, true);
        let a: Vec<(usize, u64)> = s.expand().iter().map(|sh| (sh.index, sh.cfg.seed)).collect();
        let b: Vec<(usize, u64)> = s.expand().iter().map(|sh| (sh.index, sh.cfg.seed)).collect();
        prop_assert_eq!(a, b);
    }
}
