//! The declarative scenario grid: a sweep over (scenario × load × seed)
//! that expands into independent simulation shards.

pub use ntt_sim::scenarios::{Scenario, ScenarioConfig};

/// SplitMix64 finalizer — a bijection on `u64`, used to decorrelate
/// per-shard seeds. Because it is a bijection, distinct inputs always
/// produce distinct outputs, which is what makes [`SeedSchedule::Mixed`]
/// collision-free by construction. By-value convenience over the one
/// shared mixing routine ([`ntt_tensor::splitmix64`]), so fleet seed
/// schedules and trainer/dropout streams can never silently diverge.
pub fn splitmix64(x: u64) -> u64 {
    let mut state = x;
    ntt_tensor::splitmix64(&mut state)
}

/// How the per-shard seed is derived from `(base_seed, shard ordinal)`.
///
/// Both schedules are injective in the ordinal for a fixed base seed,
/// so every shard of a sweep gets a unique seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeedSchedule {
    /// `seed = splitmix64(base_seed + ordinal)` — decorrelated seeds;
    /// the default for grids, where neighboring cells should not share
    /// low-bit structure.
    Mixed,
    /// `seed = base_seed + ordinal` — the legacy schedule of the serial
    /// `run_many`, kept so fleet runs reproduce its traces bit-for-bit.
    Sequential,
}

impl SeedSchedule {
    /// The seed for shard `ordinal` under this schedule.
    pub fn shard_seed(&self, base_seed: u64, ordinal: u64) -> u64 {
        match self {
            SeedSchedule::Mixed => splitmix64(base_seed.wrapping_add(ordinal)),
            SeedSchedule::Sequential => base_seed.wrapping_add(ordinal),
        }
    }
}

/// One cell-instance of a sweep: a fully derived simulation config plus
/// its grid coordinates. `cfg` alone determines the trace; the rest is
/// bookkeeping for reports and sinks.
#[derive(Debug, Clone, Copy)]
pub struct Shard {
    /// Ordinal in grid expansion order (scenario-major, then load, then
    /// repeat). Sinks receive shards in exactly this order.
    pub index: usize,
    pub scenario: Scenario,
    /// Multiplier applied to the base foreground and cross rates.
    pub load_factor: f64,
    /// Repeat index within the (scenario, load) cell.
    pub run: usize,
    /// Fully derived config (rates scaled, per-shard seed set).
    pub cfg: ScenarioConfig,
}

/// A declarative sweep: (scenario × load_factor × runs_per_cell), every
/// combination simulated with a deterministically derived unique seed.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Template config; each shard copies it, scales the offered load,
    /// and substitutes its derived seed.
    pub base: ScenarioConfig,
    pub scenarios: Vec<Scenario>,
    /// Multipliers on `sender_rate_bps` and `cross_rate_bps` (1.0 =
    /// the base config's load).
    pub load_factors: Vec<f64>,
    /// Independent repeats (distinct seeds) per (scenario, load) cell.
    pub runs_per_cell: usize,
    pub base_seed: u64,
    pub seed_schedule: SeedSchedule,
}

impl SweepSpec {
    /// A one-scenario, base-load sweep; extend it with the builder
    /// methods. The base config's own seed becomes the sweep seed.
    pub fn new(base: ScenarioConfig) -> Self {
        SweepSpec {
            base_seed: base.seed,
            base,
            scenarios: vec![Scenario::Pretrain],
            load_factors: vec![1.0],
            runs_per_cell: 1,
            seed_schedule: SeedSchedule::Mixed,
        }
    }

    /// The sweep equivalent of `run_many(scenario, cfg, n_runs)`:
    /// same scenario, same sequential seed schedule, so the expanded
    /// shards reproduce the serial traces bit-for-bit.
    pub fn single(scenario: Scenario, cfg: ScenarioConfig, n_runs: usize) -> Self {
        SweepSpec {
            base_seed: cfg.seed,
            base: cfg,
            scenarios: vec![scenario],
            load_factors: vec![1.0],
            runs_per_cell: n_runs,
            seed_schedule: SeedSchedule::Sequential,
        }
    }

    pub fn scenarios(mut self, scenarios: Vec<Scenario>) -> Self {
        assert!(!scenarios.is_empty(), "a sweep needs at least one scenario");
        self.scenarios = scenarios;
        self
    }

    pub fn load_factors(mut self, load_factors: Vec<f64>) -> Self {
        assert!(
            load_factors.iter().all(|l| *l > 0.0),
            "load factors must be positive"
        );
        assert!(!load_factors.is_empty(), "a sweep needs at least one load");
        self.load_factors = load_factors;
        self
    }

    pub fn runs_per_cell(mut self, runs: usize) -> Self {
        assert!(runs >= 1, "a sweep needs at least one run per cell");
        self.runs_per_cell = runs;
        self
    }

    pub fn base_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    pub fn seed_schedule(mut self, schedule: SeedSchedule) -> Self {
        self.seed_schedule = schedule;
        self
    }

    /// One-line human/provenance description of the grid, e.g.
    /// `"pretrain+case1 x loads [0.5, 1.0] x 2 runs (seed 7, Mixed)"`.
    pub fn describe(&self) -> String {
        let scenarios: Vec<String> = self.scenarios.iter().map(|s| s.label()).collect();
        format!(
            "{} x loads {:?} x {} runs (seed {}, {:?})",
            scenarios.join("+"),
            self.load_factors,
            self.runs_per_cell,
            self.base_seed,
            self.seed_schedule,
        )
    }

    /// Number of shards the grid expands to.
    pub fn len(&self) -> usize {
        self.scenarios.len() * self.load_factors.len() * self.runs_per_cell
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expand the grid into shards, scenario-major. Pure: the result
    /// depends only on the spec, never on threads or timing.
    ///
    /// The structural invariants are enforced here (not only in the
    /// builder methods, whose checks a struct literal could bypass):
    /// at least one scenario and one positive load factor. A
    /// `runs_per_cell` of 0 is allowed and expands to an empty sweep —
    /// that mirrors the serial `run_many(.., 0)` contract.
    pub fn expand(&self) -> Vec<Shard> {
        assert!(
            !self.scenarios.is_empty(),
            "a sweep needs at least one scenario"
        );
        assert!(
            !self.load_factors.is_empty(),
            "a sweep needs at least one load factor"
        );
        assert!(
            self.load_factors.iter().all(|l| *l > 0.0),
            "load factors must be positive"
        );
        let mut shards = Vec::with_capacity(self.len());
        for &scenario in &self.scenarios {
            for &load_factor in &self.load_factors {
                for run in 0..self.runs_per_cell {
                    let index = shards.len();
                    let mut cfg = self.base;
                    cfg.sender_rate_bps = self.base.sender_rate_bps * load_factor;
                    cfg.cross_rate_bps = self.base.cross_rate_bps * load_factor;
                    cfg.seed = self.seed_schedule.shard_seed(self.base_seed, index as u64);
                    shards.push(Shard {
                        index,
                        scenario,
                        load_factor,
                        run,
                        cfg,
                    });
                }
            }
        }
        shards
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_is_scenario_major_and_complete() {
        let spec = SweepSpec::new(ScenarioConfig::tiny(3))
            .scenarios(vec![Scenario::Pretrain, Scenario::Case1])
            .load_factors(vec![0.5, 1.0])
            .runs_per_cell(2);
        let shards = spec.expand();
        assert_eq!(shards.len(), 8);
        assert_eq!(shards.len(), spec.len());
        // Scenario-major: first four shards are Pretrain.
        assert!(shards[..4].iter().all(|s| s.scenario == Scenario::Pretrain));
        assert!(shards[4..].iter().all(|s| s.scenario == Scenario::Case1));
        // Load applied to both rates.
        let base = ScenarioConfig::tiny(3);
        assert_eq!(shards[0].cfg.sender_rate_bps, base.sender_rate_bps * 0.5);
        assert_eq!(shards[0].cfg.cross_rate_bps, base.cross_rate_bps * 0.5);
        assert_eq!(shards[2].cfg.sender_rate_bps, base.sender_rate_bps);
        // Indices are the ordinals.
        for (i, s) in shards.iter().enumerate() {
            assert_eq!(s.index, i);
        }
    }

    #[test]
    fn expansion_is_deterministic() {
        let spec = SweepSpec::new(ScenarioConfig::tiny(7))
            .scenarios(vec![Scenario::Case2, Scenario::ParkingLot { hops: 5 }])
            .runs_per_cell(3);
        let a: Vec<u64> = spec.expand().iter().map(|s| s.cfg.seed).collect();
        let b: Vec<u64> = spec.expand().iter().map(|s| s.cfg.seed).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn sequential_schedule_matches_run_many_seeds() {
        let cfg = ScenarioConfig::tiny(40);
        let spec = SweepSpec::single(Scenario::Pretrain, cfg, 4);
        let seeds: Vec<u64> = spec.expand().iter().map(|s| s.cfg.seed).collect();
        assert_eq!(seeds, vec![40, 41, 42, 43]);
    }

    #[test]
    #[should_panic(expected = "at least one scenario")]
    fn expand_rejects_field_level_invariant_bypass() {
        // Builder methods assert, but the fields are pub; expand() must
        // still catch a struct mutated into an invalid state.
        let mut spec = SweepSpec::new(ScenarioConfig::tiny(0));
        spec.scenarios.clear();
        spec.expand();
    }

    #[test]
    #[should_panic(expected = "load factors must be positive")]
    fn expand_rejects_nonpositive_loads() {
        let mut spec = SweepSpec::new(ScenarioConfig::tiny(0));
        spec.load_factors = vec![1.0, 0.0];
        spec.expand();
    }

    #[test]
    fn zero_runs_expand_to_an_empty_sweep() {
        // run_many(.., 0) returns no traces; the compat path matches.
        let spec = SweepSpec::single(Scenario::Pretrain, ScenarioConfig::tiny(0), 0);
        assert!(spec.expand().is_empty());
        assert!(spec.is_empty());
    }

    #[test]
    fn mixed_schedule_decorrelates_neighbors() {
        let s = SeedSchedule::Mixed;
        let a = s.shard_seed(0, 0);
        let b = s.shard_seed(0, 1);
        // Neighboring ordinals should differ in many bits, not just one.
        assert!((a ^ b).count_ones() > 10, "{a:x} vs {b:x}");
    }
}
