//! The work-stealing executor and streaming ingestion sinks.
//!
//! Workers claim shards from a shared atomic cursor (the degenerate but
//! contention-free form of work stealing: one global deque, steals from
//! the front) and push finished traces over a channel. The collector
//! holds a reorder buffer and folds results into the [`ShardSink`] in
//! shard order, so ingestion is deterministic regardless of thread
//! count or completion order — a shard's trace is a pure function of
//! its config, and the sink always observes the same sequence.

use crate::grid::{Shard, SweepSpec};
use ntt_data::{RunData, TraceData};
use ntt_sim::scenarios::{run, RunTrace, Scenario};
use std::collections::BTreeMap;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

/// Executor settings.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Worker threads; `0` = one per available core (capped at the
    /// shard count either way).
    pub threads: usize,
    /// Times a failed shard attempt (panic in the simulator, or an
    /// injected chaos fault) is retried before the failure propagates.
    /// Safe to retry blindly: a shard's trace is a pure function of its
    /// config, so a retried shard is byte-identical to one that
    /// succeeded first try — retries can change wall time, never data.
    pub max_retries: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            threads: 0,
            max_retries: 2,
        }
    }
}

impl FleetConfig {
    /// Run on exactly `threads` workers (`0` = auto).
    pub fn with_threads(threads: usize) -> Self {
        FleetConfig {
            threads,
            ..Self::default()
        }
    }

    fn resolve(&self, n_shards: usize) -> usize {
        let auto = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let requested = if self.threads == 0 {
            auto
        } else {
            self.threads
        };
        requested.min(n_shards).max(1)
    }
}

/// Receives each finished shard **in shard order** (the reorder buffer
/// guarantees it). Implementations decide what to keep: raw traces,
/// folded datasets, files on disk, or just statistics.
pub trait ShardSink {
    fn on_shard(&mut self, shard: &Shard, trace: RunTrace);
}

/// Keeps every raw trace (the `run_many`-compatible sink). Memory grows
/// with the whole sweep; prefer [`StreamToData`] for large grids.
#[derive(Default)]
pub struct CollectTraces {
    pub traces: Vec<RunTrace>,
}

impl CollectTraces {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn into_traces(self) -> Vec<RunTrace> {
        self.traces
    }
}

impl ShardSink for CollectTraces {
    fn on_shard(&mut self, _shard: &Shard, trace: RunTrace) {
        self.traces.push(trace);
    }
}

/// Streaming ingestion: folds each trace into compact
/// [`ntt_data::RunData`] the moment it arrives and drops the raw trace,
/// so peak memory is bounded by shards-in-flight plus the (much
/// smaller) preprocessed runs. Optionally spills every raw trace to
/// `<dir>/shard-NNNN-<scenario>` via `ntt_sim::persist` first, so the
/// dataset can be reloaded without re-simulating.
#[derive(Default)]
pub struct StreamToData {
    runs: Vec<RunData>,
    spill_dir: Option<PathBuf>,
    /// First error hit while spilling (spilling is best-effort for the
    /// dataset but surfaced here for callers that require it).
    pub spill_error: Option<io::Error>,
}

impl StreamToData {
    pub fn new() -> Self {
        Self::default()
    }

    /// Also persist each raw trace under `dir` (created if missing).
    pub fn with_spill_dir(dir: impl Into<PathBuf>) -> Self {
        StreamToData {
            runs: Vec::new(),
            spill_dir: Some(dir.into()),
            spill_error: None,
        }
    }

    /// The file stem a shard spills to (under the spill dir).
    pub fn spill_stem(shard: &Shard) -> String {
        format!("shard-{:04}-{}", shard.index, shard.scenario.label())
    }

    /// Finish ingestion and hand the dataset over.
    pub fn into_data(self) -> Arc<TraceData> {
        TraceData::from_runs(self.runs)
    }
}

impl ShardSink for StreamToData {
    fn on_shard(&mut self, shard: &Shard, trace: RunTrace) {
        if let Some(dir) = &self.spill_dir {
            let res = std::fs::create_dir_all(dir).and_then(|()| {
                ntt_sim::persist::save_trace(dir.join(Self::spill_stem(shard)), &trace)
            });
            if let (Err(e), None) = (res, &self.spill_error) {
                self.spill_error = Some(e);
            }
        }
        self.runs.push(RunData::from_trace(&trace));
        // `trace` dropped here: streaming, not accumulation.
    }
}

/// Per-shard accounting.
#[derive(Debug, Clone, Copy)]
pub struct ShardStat {
    pub index: usize,
    pub scenario: Scenario,
    pub load_factor: f64,
    pub seed: u64,
    pub packets: usize,
    pub messages: usize,
    pub events: u64,
    pub drops: u64,
    /// Wall-clock time this shard's simulation took on its worker.
    pub wall: Duration,
}

/// Fleet-level aggregates for a finished sweep.
#[derive(Debug, Clone)]
pub struct FleetReport {
    pub shards: Vec<ShardStat>,
    pub threads: usize,
    /// End-to-end wall time of the fleet run (including ingestion).
    pub wall: Duration,
}

impl FleetReport {
    pub fn total_packets(&self) -> usize {
        self.shards.iter().map(|s| s.packets).sum()
    }

    pub fn total_messages(&self) -> usize {
        self.shards.iter().map(|s| s.messages).sum()
    }

    pub fn total_events(&self) -> u64 {
        self.shards.iter().map(|s| s.events).sum()
    }

    pub fn total_drops(&self) -> u64 {
        self.shards.iter().map(|s| s.drops).sum()
    }

    /// Sum of per-shard simulation times (the serial-equivalent cost).
    pub fn cpu_time(&self) -> Duration {
        self.shards.iter().map(|s| s.wall).sum()
    }

    /// Traced packets simulated per wall-clock second.
    pub fn packets_per_sec(&self) -> f64 {
        self.total_packets() as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Simulator events processed per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        self.total_events() as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{} shards on {} threads in {:.2}s (cpu {:.2}s): {} packets, {} messages, {} drops, {:.0}k events/s",
            self.shards.len(),
            self.threads,
            self.wall.as_secs_f64(),
            self.cpu_time().as_secs_f64(),
            self.total_packets(),
            self.total_messages(),
            self.total_drops(),
            self.events_per_sec() / 1e3,
        )
    }
}

/// One shard, with bounded retry: a failed attempt — a panic inside the
/// simulator, or a fault injected at the `fleet.shard.attempt` chaos
/// site — is retried up to `max_retries` times with a short fixed
/// backoff before the failure propagates. Retrying is *correctness-
/// neutral*: `run(scenario, cfg)` is a pure function of the shard
/// config, so the attempt that finally succeeds produces the same bytes
/// any attempt would have. The chaos decision is keyed by
/// `(shard index, attempt)`, making the fault schedule a pure function
/// of the plan seed — invariant across thread counts and claim order.
fn run_shard_with_retries(shard: &Shard, index: usize, max_retries: usize) -> RunTrace {
    let mut attempt: usize = 0;
    loop {
        // Key = shard index in the high bits, attempt in the low bits:
        // an injected failure on attempt 0 does not doom attempt 1.
        let key = (index as u64) << 8 | (attempt as u64).min(0xff);
        let result: Result<RunTrace, Box<dyn std::any::Any + Send>> =
            if ntt_chaos::should_fail_keyed("fleet.shard.attempt", key) {
                Err(Box::new("chaos: injected shard failure"))
            } else {
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    run(shard.scenario, &shard.cfg)
                }))
            };
        match result {
            Ok(trace) => return trace,
            Err(payload) => {
                if attempt >= max_retries {
                    // Budget exhausted: surface the original failure
                    // (the collector's recv unblocks and reports it).
                    std::panic::resume_unwind(payload);
                }
                attempt += 1;
                ntt_obs::counter!("fleet.shard_retries").inc();
                // Fixed exponential backoff, no clock read: the delay
                // schedule is part of the deterministic plan, not a
                // function of observed time.
                std::thread::sleep(Duration::from_millis(1u64 << attempt.min(6)));
            }
        }
    }
}

/// Run every shard of `spec` across a worker pool, folding results into
/// `sink` in shard order.
///
/// Determinism: each shard's trace is a pure function of `shard.cfg`
/// (the simulator threads its own seeded RNG), workers never share
/// state, and the reorder buffer serializes sink calls by shard index —
/// so the sink observes byte-identical input for any `threads` setting.
pub fn run_fleet(spec: &SweepSpec, cfg: &FleetConfig, sink: &mut dyn ShardSink) -> FleetReport {
    let shards = spec.expand();
    let n = shards.len();
    let threads = cfg.resolve(n);
    // Wall clock through the audited obs seam (lint R3): sweep timings
    // are report output only, never an input to the sweep itself.
    let started = ntt_obs::Stopwatch::start();
    let mut stats: Vec<Option<ShardStat>> = (0..n).map(|_| None).collect();

    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, RunTrace, Duration)>();
    // Ingestion-progress throttle: workers may run at most `window`
    // shards ahead of the sink, which bounds the reorder buffer (and
    // thus peak raw-trace memory) at O(threads) even when one early
    // shard is much slower than everything behind it.
    let window = threads * 2;
    let emitted = std::sync::Mutex::new(0usize);
    let emitted_cv = std::sync::Condvar::new();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let shards = &shards;
            let next = &next;
            let emitted = &emitted;
            let emitted_cv = &emitted_cv;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= shards.len() {
                    break;
                }
                // Each cursor claim is a "steal" off the shared deque.
                ntt_obs::counter!("fleet.steals").inc();
                // Claims are strictly increasing, so the worker holding
                // the lowest unfinished shard always satisfies
                // `i < emitted + window` and progress is guaranteed.
                {
                    let mut e = emitted.lock().expect("fleet collector panicked");
                    while i >= e.saturating_add(window) {
                        e = emitted_cv.wait(e).expect("fleet collector panicked");
                    }
                }
                let shard = shards[i];
                let t0 = ntt_obs::Stopwatch::start();
                let trace = run_shard_with_retries(&shard, i, cfg.max_retries);
                if tx.send((i, trace, t0.elapsed())).is_err() {
                    break; // collector gone; nothing left to do
                }
            });
        }
        drop(tx);

        // If the sink panics below, throttled workers must still wake
        // or the scope's implicit join would deadlock; this guard lifts
        // the window on any exit from the collector.
        struct UnblockOnExit<'a>(&'a std::sync::Mutex<usize>, &'a std::sync::Condvar);
        impl Drop for UnblockOnExit<'_> {
            fn drop(&mut self) {
                *self.0.lock().unwrap_or_else(|e| e.into_inner()) = usize::MAX;
                self.1.notify_all();
            }
        }
        let _unblock = UnblockOnExit(&emitted, &emitted_cv);

        // Reorder buffer: hold out-of-order completions until all
        // predecessors arrived, then fold into the sink in shard order.
        let mut pending: BTreeMap<usize, (RunTrace, Duration)> = BTreeMap::new();
        let mut next_emit = 0usize;
        for _ in 0..n {
            let (i, trace, wall) = rx.recv().expect("fleet worker panicked");
            pending.insert(i, (trace, wall));
            // Depth observed on every arrival: how far completion order
            // ran ahead of shard order (1 = perfectly in order).
            ntt_obs::histogram!("fleet.reorder_depth").record(pending.len() as u64);
            while let Some((trace, wall)) = pending.remove(&next_emit) {
                let shard = &shards[next_emit];
                stats[next_emit] = Some(ShardStat {
                    index: shard.index,
                    scenario: shard.scenario,
                    load_factor: shard.load_factor,
                    seed: shard.cfg.seed,
                    packets: trace.packets.len(),
                    messages: trace.messages.len(),
                    events: trace.events,
                    drops: trace.drops,
                    wall,
                });
                ntt_obs::counter!("fleet.shards_run").inc();
                ntt_obs::histogram!("fleet.shard_ns")
                    .record(wall.as_nanos().min(u64::MAX as u128) as u64);
                sink.on_shard(shard, trace);
                next_emit += 1;
            }
            *emitted.lock().expect("fleet worker panicked") = next_emit;
            emitted_cv.notify_all();
        }
    });

    FleetReport {
        shards: stats
            .into_iter()
            .map(|s| s.expect("shard not run"))
            .collect(),
        threads,
        wall: started.elapsed(),
    }
}

/// Run a sweep and collect every raw trace (shard order).
pub fn run_fleet_traces(spec: &SweepSpec, cfg: &FleetConfig) -> (Vec<RunTrace>, FleetReport) {
    let mut sink = CollectTraces::new();
    let report = run_fleet(spec, cfg, &mut sink);
    (sink.into_traces(), report)
}

/// Run a sweep with streaming ingestion straight into a training
/// dataset (raw traces are dropped shard by shard).
pub fn run_fleet_dataset(spec: &SweepSpec, cfg: &FleetConfig) -> (Arc<TraceData>, FleetReport) {
    let mut sink = StreamToData::new();
    let report = run_fleet(spec, cfg, &mut sink);
    (sink.into_data(), report)
}

/// Drop-in parallel replacement for the deprecated serial
/// `ntt_sim::scenarios::run_many`: identical seed schedule
/// (`cfg.seed, cfg.seed+1, ...`), byte-identical traces, fanned out
/// over `threads` workers (`0` = one per core).
pub fn run_many_parallel(
    scenario: Scenario,
    cfg: &ntt_sim::ScenarioConfig,
    n_runs: usize,
    threads: usize,
) -> Vec<RunTrace> {
    let spec = SweepSpec::single(scenario, *cfg, n_runs);
    run_fleet_traces(&spec, &FleetConfig::with_threads(threads)).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::ScenarioConfig;
    use ntt_sim::SimTime;

    fn fast_cfg(seed: u64) -> ScenarioConfig {
        let mut cfg = ScenarioConfig::tiny(seed);
        cfg.duration = SimTime::from_millis(500);
        cfg.drain = SimTime::from_millis(200);
        cfg
    }

    #[test]
    fn sink_sees_shards_in_order_regardless_of_threads() {
        let spec = SweepSpec::new(fast_cfg(1))
            .scenarios(vec![Scenario::Pretrain, Scenario::Case1])
            .runs_per_cell(3);

        struct OrderCheck(Vec<usize>);
        impl ShardSink for OrderCheck {
            fn on_shard(&mut self, shard: &Shard, _trace: RunTrace) {
                self.0.push(shard.index);
            }
        }
        let mut sink = OrderCheck(Vec::new());
        let report = run_fleet(&spec, &FleetConfig::with_threads(4), &mut sink);
        assert_eq!(sink.0, (0..6).collect::<Vec<_>>());
        assert_eq!(report.shards.len(), 6);
        assert!(report.total_events() > 0);
        assert_eq!(report.threads, 4);
    }

    #[test]
    fn report_aggregates_match_traces() {
        let spec = SweepSpec::new(fast_cfg(2)).runs_per_cell(2);
        let (traces, report) = run_fleet_traces(&spec, &FleetConfig::default());
        assert_eq!(traces.len(), 2);
        assert_eq!(
            report.total_packets(),
            traces.iter().map(|t| t.packets.len()).sum::<usize>()
        );
        assert_eq!(
            report.total_events(),
            traces.iter().map(|t| t.events).sum::<u64>()
        );
        assert!(report.packets_per_sec() > 0.0);
        assert!(!report.summary().is_empty());
    }
}
