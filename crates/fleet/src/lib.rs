//! # ntt-fleet
//!
//! Parallel scenario-fleet engine for the Network Traffic Transformer
//! reproduction: dataset generation that scales with cores and with
//! scenario diversity.
//!
//! The paper's central claim is that the NTT generalizes only if its
//! pre-training data spans diverse network conditions. The serial
//! `ntt_sim::scenarios::run_many` loop can only produce one scenario at
//! a time on one core; this crate replaces it with:
//!
//! * [`SweepSpec`] — a declarative (scenario × load × seed) grid that
//!   expands into a [`Shard`] list with deterministic per-shard seed
//!   derivation ([`SeedSchedule`]);
//! * [`run_fleet`] — a work-stealing multi-threaded executor
//!   (`std::thread::scope` + channels, no external deps) whose output
//!   is **provably identical for any thread count**: shard traces
//!   depend only on the shard config, and a reorder buffer folds
//!   finished shards into the sink in grid order;
//! * [`ShardSink`] streaming ingestion — each finished shard's
//!   `RunTrace` is folded straight into compact [`ntt_data::RunData`]
//!   (and optionally spilled to disk via `ntt_sim::persist`), so peak
//!   memory stays bounded by shards-in-flight instead of all raw
//!   traces;
//! * [`FleetReport`] — fleet-level aggregates (simulated packets/sec,
//!   drops, per-shard timing).
//!
//! ```
//! use ntt_fleet::{FleetConfig, SweepSpec, run_fleet_dataset};
//! use ntt_sim::scenarios::{Scenario, ScenarioConfig};
//! use ntt_sim::SimTime;
//!
//! let mut base = ScenarioConfig::tiny(0);
//! base.duration = SimTime::from_millis(500);
//! let spec = SweepSpec::new(base)
//!     .scenarios(vec![Scenario::Pretrain, Scenario::ParkingLot { hops: 4 }])
//!     .load_factors(vec![0.5, 1.0])
//!     .runs_per_cell(1);
//! assert_eq!(spec.len(), 4);
//!
//! let (data, report) = run_fleet_dataset(&spec, &FleetConfig::default());
//! assert_eq!(data.runs.len(), 4);
//! assert!(report.total_packets() > 0);
//! ```

mod executor;
mod grid;

pub use executor::{
    run_fleet, run_fleet_dataset, run_fleet_traces, run_many_parallel, CollectTraces, FleetConfig,
    FleetReport, ShardSink, ShardStat, StreamToData,
};
pub use grid::{splitmix64, Scenario, ScenarioConfig, SeedSchedule, Shard, SweepSpec};
