//! Reviewed exceptions: `lint-waivers.txt` parsing and matching.
//!
//! Format, one waiver per line:
//!
//! ```text
//! path:line:rule reason for the exception (mandatory)
//! crates/serve/src/engine.rs:129:R6 poisoned-lock recovery, cannot return an error here
//! crates/obs/src/export.rs:*:R3 whole-file waiver via line wildcard
//! ```
//!
//! `#`-prefixed lines and blank lines are ignored. The reason is
//! mandatory: a waiver without one is a parse error, because an
//! exception nobody can explain is an exception nobody reviewed.
//! Waivers that match no finding are reported too — stale waivers are
//! how gates rot.

use crate::rules::Finding;

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    pub path: String,
    /// `None` means `*`: any line in the file.
    pub line: Option<u32>,
    pub rule: String,
    pub reason: String,
    /// 1-based line in the waiver file itself (for error reporting).
    pub src_line: u32,
}

/// Parse the waiver file. Returns parsed waivers or a list of
/// human-readable parse errors (all of them, not just the first).
pub fn parse(text: &str) -> Result<Vec<Waiver>, Vec<String>> {
    let mut out = Vec::new();
    let mut errs = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let lno = idx as u32 + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (loc, reason) = match line.split_once(char::is_whitespace) {
            Some((l, r)) => (l, r.trim()),
            None => (line, ""),
        };
        if reason.is_empty() {
            errs.push(format!(
                "lint-waivers.txt:{lno}: waiver without a reason — every \
                 exception must say why"
            ));
            continue;
        }
        // loc = path:line:rule, split from the right since paths may
        // not contain ':' but we stay defensive anyway.
        let mut parts = loc.rsplitn(3, ':');
        let rule = parts.next().unwrap_or_default();
        let line_part = parts.next().unwrap_or_default();
        let path = parts.next().unwrap_or_default();
        if path.is_empty() || !rule.starts_with('R') {
            errs.push(format!(
                "lint-waivers.txt:{lno}: expected `path:line:rule reason`, got `{line}`"
            ));
            continue;
        }
        let line_no = if line_part == "*" {
            None
        } else {
            match line_part.parse::<u32>() {
                Ok(v) => Some(v),
                Err(_) => {
                    errs.push(format!(
                        "lint-waivers.txt:{lno}: line must be a number or `*`, \
                         got `{line_part}`"
                    ));
                    continue;
                }
            }
        };
        out.push(Waiver {
            path: path.replace('\\', "/"),
            line: line_no,
            rule: rule.to_string(),
            reason: reason.to_string(),
            src_line: lno,
        });
    }
    if errs.is_empty() {
        Ok(out)
    } else {
        Err(errs)
    }
}

impl Waiver {
    pub fn matches(&self, f: &Finding) -> bool {
        self.path == f.path && self.rule == f.rule && self.line.is_none_or(|l| l == f.line)
    }
}

/// Split findings into (unwaived, waived) and report unused waivers.
pub struct Applied<'a> {
    pub unwaived: Vec<&'a Finding>,
    pub waived: Vec<&'a Finding>,
    pub unused: Vec<&'a Waiver>,
}

pub fn apply<'a>(findings: &'a [Finding], waivers: &'a [Waiver]) -> Applied<'a> {
    let mut used = vec![false; waivers.len()];
    let mut unwaived = Vec::new();
    let mut waived = Vec::new();
    for f in findings {
        let mut hit = false;
        for (wi, w) in waivers.iter().enumerate() {
            if w.matches(f) {
                used[wi] = true;
                hit = true;
            }
        }
        if hit {
            waived.push(f);
        } else {
            unwaived.push(f);
        }
    }
    let unused = waivers
        .iter()
        .zip(&used)
        .filter_map(|(w, &u)| if u { None } else { Some(w) })
        .collect();
    Applied {
        unwaived,
        waived,
        unused,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(path: &str, line: u32, rule: &'static str) -> Finding {
        Finding {
            path: path.into(),
            line,
            rule,
            message: String::new(),
        }
    }

    #[test]
    fn parses_waivers_and_comments() {
        let w = parse(
            "# header comment\n\n\
             crates/serve/src/x.rs:12:R6 poisoned lock recovery\n\
             crates/obs/src/y.rs:*:R3 whole file measures wall time\n",
        )
        .unwrap();
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].line, Some(12));
        assert_eq!(w[1].line, None);
        assert_eq!(w[0].reason, "poisoned lock recovery");
    }

    #[test]
    fn reason_is_mandatory() {
        let errs = parse("crates/serve/src/x.rs:12:R6\n").unwrap_err();
        assert_eq!(errs.len(), 1);
        assert!(errs[0].contains("without a reason"));
    }

    #[test]
    fn bad_line_number_is_an_error() {
        let errs = parse("a/b.rs:twelve:R1 because\n").unwrap_err();
        assert!(errs[0].contains("number or `*`"));
    }

    #[test]
    fn matching_honors_path_line_rule_and_wildcard() {
        let ws = parse(
            "a/b.rs:10:R1 reason one\n\
             a/b.rs:*:R3 reason two\n",
        )
        .unwrap();
        let f1 = finding("a/b.rs", 10, "R1");
        let f2 = finding("a/b.rs", 11, "R1");
        let f3 = finding("a/b.rs", 99, "R3");
        let f4 = finding("a/c.rs", 10, "R1");
        assert!(ws[0].matches(&f1));
        assert!(!ws[0].matches(&f2));
        assert!(ws[1].matches(&f3));
        assert!(!ws[0].matches(&f4));
    }

    #[test]
    fn apply_reports_unused_waivers() {
        let ws = parse(
            "a/b.rs:10:R1 used\n\
             a/b.rs:20:R2 stale\n",
        )
        .unwrap();
        let fs = vec![finding("a/b.rs", 10, "R1"), finding("a/b.rs", 30, "R4")];
        let applied = apply(&fs, &ws);
        assert_eq!(applied.waived.len(), 1);
        assert_eq!(applied.unwaived.len(), 1);
        assert_eq!(applied.unused.len(), 1);
        assert_eq!(applied.unused[0].line, Some(20));
    }
}
