//! CLI for `ntt-lint`.
//!
//! ```text
//! cargo run -p ntt-lint --release -- --check [--root <path>] [--json <out.json>]
//! ```
//!
//! Default root is the current directory (CI runs from the workspace
//! root). Without `--check` the linter reports and always exits 0;
//! with it, any unwaived finding — or any stale waiver — exits 1.

use std::path::PathBuf;
use std::process::ExitCode;

use ntt_lint::{load_waivers, report, scan_workspace, waivers};

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut check = false;
    let mut json_out: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root requires a path"),
            },
            "--json" => match args.next() {
                Some(v) => json_out = Some(PathBuf::from(v)),
                None => return usage("--json requires a path"),
            },
            "--check" => check = true,
            "--help" | "-h" => {
                eprintln!("usage: ntt-lint [--root <path>] [--check] [--json <out.json>]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let findings = match scan_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("ntt-lint: scan failed under {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };
    let waiver_list = match load_waivers(&root) {
        Ok(w) => w,
        Err(errs) => {
            for e in &errs {
                eprintln!("ntt-lint: {e}");
            }
            return ExitCode::FAILURE;
        }
    };
    let applied = waivers::apply(&findings, &waiver_list);

    for f in &applied.unwaived {
        println!("{}", report::human_line(f));
    }
    for f in &applied.waived {
        println!("{} (waived)", report::human_line(f));
    }
    for w in &applied.unused {
        println!(
            "lint-waivers.txt:{}: stale waiver `{}:{}:{}` matches no finding",
            w.src_line,
            w.path,
            w.line.map_or("*".to_string(), |l| l.to_string()),
            w.rule
        );
    }

    if let Some(path) = &json_out {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                let _ = std::fs::create_dir_all(dir);
            }
        }
        let doc = report::json_report(&findings, &applied.waived);
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("ntt-lint: failed to write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }

    println!(
        "ntt-lint: {} finding(s), {} unwaived, {} waived, {} stale waiver(s)",
        findings.len(),
        applied.unwaived.len(),
        applied.waived.len(),
        applied.unused.len()
    );
    if check && (!applied.unwaived.is_empty() || !applied.unused.is_empty()) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("ntt-lint: {msg}");
    eprintln!("usage: ntt-lint [--root <path>] [--check] [--json <out.json>]");
    ExitCode::FAILURE
}
