//! A hand-rolled Rust lexer: just enough of the language to lint it.
//!
//! The scanner needs three things `grep` cannot give it: (1) tokens
//! that are provably *code* — never the inside of a string literal or a
//! comment; (2) the comments themselves, with line spans, so rules can
//! demand `// SAFETY:` and justification comments in the right place;
//! (3) which tokens live inside `#[cfg(test)]` items or `mod tests`
//! blocks, so test code is exempt from production rules.
//!
//! It is not a full lexer (no float-suffix pedantry, no shebang
//! handling) but it is exact on the constructs that would otherwise
//! cause false findings: nested block comments, raw strings
//! (`r#"..."#` with any `#` depth), byte/C strings, raw identifiers
//! (`r#type`), and char literals vs lifetimes (`'a'` vs `'a`).

/// One significant token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    pub kind: TokKind,
    /// 1-based source line.
    pub line: u32,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier, keyword, or numeric literal.
    Word(String),
    /// Single punctuation character (`::` arrives as two `:`).
    Sym(char),
}

impl Tok {
    pub fn is_word(&self, w: &str) -> bool {
        matches!(&self.kind, TokKind::Word(s) if s == w)
    }

    pub fn is_sym(&self, c: char) -> bool {
        matches!(&self.kind, TokKind::Sym(s) if *s == c)
    }

    pub fn word(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Word(s) => Some(s),
            TokKind::Sym(_) => None,
        }
    }
}

/// One comment (line or block), with the lines it covers.
#[derive(Debug, Clone)]
pub struct Comment {
    pub start_line: u32,
    pub end_line: u32,
    /// Raw text including the `//` / `/*` markers.
    pub text: String,
    /// `///`, `//!`, `/**`, or `/*!` — documentation, not annotation.
    pub doc: bool,
}

/// Lexed file: tokens plus the comments the tokenizer skipped.
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub comments: Vec<Comment>,
}

pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let n = b.len();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;

    let count_lines = |s: &[char]| s.iter().filter(|&&c| c == '\n').count() as u32;

    while i < n {
        let c = b[i];
        // Whitespace.
        if c.is_whitespace() {
            if c == '\n' {
                line += 1;
            }
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < n {
            if b[i + 1] == '/' {
                let start = i;
                while i < n && b[i] != '\n' {
                    i += 1;
                }
                let text: String = b[start..i].iter().collect();
                let doc = text.starts_with("///") || text.starts_with("//!");
                out.comments.push(Comment {
                    start_line: line,
                    end_line: line,
                    text,
                    doc,
                });
                continue;
            }
            if b[i + 1] == '*' {
                let start = i;
                let start_line = line;
                let mut depth = 1usize;
                i += 2;
                while i < n && depth > 0 {
                    if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                let text: String = b[start..i].iter().collect();
                let doc = text.starts_with("/**") || text.starts_with("/*!");
                out.comments.push(Comment {
                    start_line,
                    end_line: line,
                    text,
                    doc,
                });
                continue;
            }
        }
        // String-ish literals, including prefixed forms. Probe for a
        // prefix of ident chars immediately followed by a quote — that
        // covers "", b"", c"", r"", br"", cr"", and r#"..."# at any
        // hash depth — while leaving raw identifiers (r#type) alone.
        if c == '"' {
            i = skip_string(&b, i, &mut line);
            continue;
        }
        if (c == 'r' || c == 'b' || c == 'c') && i + 1 < n {
            let mut j = i;
            // Up to two prefix letters (br, cr), then optional #s (raw).
            while j < n && (b[j] == 'r' || b[j] == 'b' || b[j] == 'c') && j - i < 2 {
                j += 1;
            }
            let hash_start = j;
            while j < n && b[j] == '#' {
                j += 1;
            }
            let hashes = j - hash_start;
            if j < n && b[j] == '"' {
                // Raw/byte/C string: for raw forms the terminator is
                // `"` + `hashes` `#`s, with no escapes; plain b"/c"
                // still honor escapes.
                let raw = b[i..hash_start].contains(&'r');
                if raw || hashes > 0 {
                    i = skip_raw_string(&b, j, hashes, &mut line);
                } else {
                    i = skip_string(&b, j, &mut line);
                }
                continue;
            }
            if hashes > 0 && j < n && is_ident_char(b[j]) {
                // Raw identifier r#type: emit the ident without r#.
                let start = j;
                while j < n && is_ident_char(b[j]) {
                    j += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Word(b[start..j].iter().collect()),
                    line,
                });
                i = j;
                continue;
            }
            if b[i] == 'b' && i + 1 < n && b[i + 1] == '\'' {
                // Byte char literal b'x'.
                i = skip_char_literal(&b, i + 1, &mut line);
                continue;
            }
            // Fall through: ordinary identifier starting with r/b/c.
        }
        // Char literal vs lifetime.
        if c == '\'' {
            // A lifetime is `'` + ident not followed by a closing `'`.
            let mut j = i + 1;
            if j < n && b[j] == '\\' {
                i = skip_char_literal(&b, i, &mut line);
                continue;
            }
            while j < n && is_ident_char(b[j]) {
                j += 1;
            }
            if j < n && b[j] == '\'' && j > i + 1 {
                // 'a' or '_' — only a char literal if exactly one char
                // (multi-char like 'abc' cannot appear; `j - i - 1 == 1`).
                if j - i - 1 == 1 {
                    i = j + 1;
                    continue;
                }
            }
            if j == i + 1 && j < n {
                // Non-ident char like '\n' handled above; ' ' or '(' etc.
                i = skip_char_literal(&b, i, &mut line);
                continue;
            }
            // Lifetime: skip the quote, the ident lexes as a word next.
            i += 1;
            continue;
        }
        // Identifiers / keywords.
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < n && is_ident_char(b[i]) {
                i += 1;
            }
            out.toks.push(Tok {
                kind: TokKind::Word(b[start..i].iter().collect()),
                line,
            });
            continue;
        }
        // Numbers (loose: 0xff, 1_000, 1e-3 lexes as `1e`, `-`, `3`,
        // which is fine — rules never inspect numerics).
        if c.is_ascii_digit() {
            let start = i;
            while i < n
                && (is_ident_char(b[i]) || (b[i] == '.' && i + 1 < n && b[i + 1].is_ascii_digit()))
            {
                i += 1;
            }
            out.toks.push(Tok {
                kind: TokKind::Word(b[start..i].iter().collect()),
                line,
            });
            continue;
        }
        out.toks.push(Tok {
            kind: TokKind::Sym(c),
            line,
        });
        if c == '\n' {
            line += 1;
        }
        i += 1;
    }
    let _ = count_lines;
    out
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Skip a `"..."` literal starting at the opening quote; returns the
/// index just past the closing quote.
fn skip_string(b: &[char], open: usize, line: &mut u32) -> usize {
    let mut i = open + 1;
    while i < b.len() {
        match b[i] {
            '\\' => i += 2,
            '"' => return i + 1,
            '\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Skip a raw string whose opening quote is at `open` with `hashes`
/// leading `#`s; no escapes, terminated by `"` + the same `#` count.
fn skip_raw_string(b: &[char], open: usize, hashes: usize, line: &mut u32) -> usize {
    let mut i = open + 1;
    while i < b.len() {
        if b[i] == '\n' {
            *line += 1;
        }
        if b[i] == '"' {
            let mut k = 0usize;
            while k < hashes && i + 1 + k < b.len() && b[i + 1 + k] == '#' {
                k += 1;
            }
            if k == hashes {
                return i + 1 + hashes;
            }
        }
        i += 1;
    }
    i
}

/// Skip a char literal starting at the opening `'`.
fn skip_char_literal(b: &[char], open: usize, line: &mut u32) -> usize {
    let mut i = open + 1;
    while i < b.len() {
        match b[i] {
            '\\' => i += 2,
            '\'' => return i + 1,
            '\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

// ---------------------------------------------------------------------
// Test-region detection.

/// Marks each token as test code or not. Test code is: any item behind
/// a `#[cfg(...test...)]` attribute (the whole braced body or the
/// `;`-terminated item), and any `mod tests { ... }` / `mod test { ... }`
/// body. A file-level `#![cfg(test)]` marks the entire file.
pub fn test_mask(toks: &[Tok]) -> Vec<bool> {
    let n = toks.len();
    let mut mask = vec![false; n];
    let mut i = 0usize;
    while i < n {
        if toks[i].is_sym('#') {
            let inner = i + 1 < n && toks[i + 1].is_sym('!');
            let lb = i + if inner { 2 } else { 1 };
            if lb < n && toks[lb].is_sym('[') {
                let rb = match matching(toks, lb, '[', ']') {
                    Some(r) => r,
                    None => break,
                };
                let mut saw_cfg = false;
                let mut saw_test = false;
                for t in &toks[lb..rb] {
                    if t.is_word("cfg") {
                        saw_cfg = true;
                    }
                    if t.is_word("test") {
                        saw_test = true;
                    }
                }
                if saw_cfg && saw_test {
                    if inner {
                        // #![cfg(test)]: whole file is test code.
                        for m in mask.iter_mut() {
                            *m = true;
                        }
                        return mask;
                    }
                    let end = item_end(toks, rb + 1).unwrap_or(n - 1);
                    for m in mask.iter_mut().take(end + 1).skip(i) {
                        *m = true;
                    }
                    i = end + 1;
                    continue;
                }
                i = rb + 1;
                continue;
            }
        }
        if toks[i].is_word("mod")
            && i + 2 < n
            && (toks[i + 1].is_word("tests") || toks[i + 1].is_word("test"))
            && toks[i + 2].is_sym('{')
        {
            let end = matching(toks, i + 2, '{', '}').unwrap_or(n - 1);
            for m in mask.iter_mut().take(end + 1).skip(i) {
                *m = true;
            }
            i = end + 1;
            continue;
        }
        i += 1;
    }
    mask
}

/// Index of the sym matching `open` at `at` (same kind nesting).
fn matching(toks: &[Tok], at: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(at) {
        if t.is_sym(open) {
            depth += 1;
        } else if t.is_sym(close) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// End of the item starting at `from` (inclusive token index): skips
/// over any further attributes, then runs to the matching `}` of the
/// first body brace, or to the first top-level `;` for braceless items
/// (`#[cfg(test)] use ...;`).
fn item_end(toks: &[Tok], mut from: usize) -> Option<usize> {
    let n = toks.len();
    // Chained attributes: #[cfg(test)] #[derive(..)] struct ...
    while from < n && toks[from].is_sym('#') {
        let lb = from + 1;
        if lb < n && toks[lb].is_sym('[') {
            from = matching(toks, lb, '[', ']')? + 1;
        } else {
            break;
        }
    }
    let mut depth_paren = 0isize;
    let mut depth_brack = 0isize;
    let mut j = from;
    while j < n {
        let t = &toks[j];
        if t.is_sym('(') {
            depth_paren += 1;
        } else if t.is_sym(')') {
            depth_paren -= 1;
        } else if t.is_sym('[') {
            depth_brack += 1;
        } else if t.is_sym(']') {
            depth_brack -= 1;
        } else if t.is_sym('{') {
            return matching(toks, j, '{', '}');
        } else if t.is_sym(';') && depth_paren == 0 && depth_brack == 0 {
            return Some(j);
        }
        j += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .iter()
            .filter_map(|t| t.word().map(str::to_string))
            .collect()
    }

    #[test]
    fn strings_and_comments_are_skipped() {
        let src = r##"
            let a = "unsafe HashMap"; // unsafe in a comment
            /* thread_rng in a block /* nested */ comment */
            let b = r#"Instant::now() inside raw"#;
            let c = 'x';
            let d: &'static str = "s";
        "##;
        let w = words(src);
        assert!(!w.iter().any(|s| s == "unsafe"));
        assert!(!w.iter().any(|s| s == "HashMap"));
        assert!(!w.iter().any(|s| s == "thread_rng"));
        assert!(!w.iter().any(|s| s == "Instant"));
        assert!(w.iter().any(|s| s == "static"), "lifetime ident lexes");
        let lx = lex(src);
        assert_eq!(lx.comments.len(), 2);
        assert!(lx.comments[1].text.contains("nested"));
    }

    #[test]
    fn raw_hash_strings_terminate_on_matching_hashes() {
        let src = r####"let x = r##"quote " and "# inside"##; let unsafe_after = 1;"####;
        let w = words(src);
        assert!(w.iter().any(|s| s == "unsafe_after"));
        assert!(!w.iter().any(|s| s == "inside"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let src = "fn f<'a>(x: &'a u8) { let c = '\\n'; let q = '\"'; let u = 'u'; }";
        let w = words(src);
        // The quote char literal must not open a string that swallows
        // the rest of the file.
        assert!(w.iter().any(|s| s == "u8"));
        assert_eq!(w.iter().filter(|s| *s == "a").count(), 2, "lifetime idents");
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let src = "let a = \"x\ny\";\n/* c\nc */\nunsafe {}\n";
        let lx = lex(src);
        let t = lx.toks.iter().find(|t| t.is_word("unsafe")).unwrap();
        assert_eq!(t.line, 5);
    }

    #[test]
    fn cfg_test_mod_is_masked() {
        let src = r#"
            fn prod() { }
            #[cfg(test)]
            mod tests {
                fn t() { let h: HashMap<u8, u8> = HashMap::new(); }
            }
            fn also_prod() { }
        "#;
        let lx = lex(src);
        let mask = test_mask(&lx.toks);
        for (t, &m) in lx.toks.iter().zip(&mask) {
            if t.is_word("HashMap") {
                assert!(m, "HashMap inside cfg(test) must be masked");
            }
            if t.is_word("also_prod") || t.is_word("prod") {
                assert!(!m, "production tokens must stay unmasked");
            }
        }
    }

    #[test]
    fn cfg_test_braceless_item_is_masked() {
        let src = "#[cfg(test)] use std::collections::HashMap; fn prod() {}";
        let lx = lex(src);
        let mask = test_mask(&lx.toks);
        for (t, &m) in lx.toks.iter().zip(&mask) {
            if t.is_word("HashMap") {
                assert!(m);
            }
            if t.is_word("prod") {
                assert!(!m);
            }
        }
    }

    #[test]
    fn mod_tests_without_cfg_is_masked() {
        let src = "mod tests { fn f() { x.unwrap(); } } fn prod() {}";
        let lx = lex(src);
        let mask = test_mask(&lx.toks);
        for (t, &m) in lx.toks.iter().zip(&mask) {
            if t.is_word("unwrap") {
                assert!(m);
            }
            if t.is_word("prod") {
                assert!(!m);
            }
        }
    }

    #[test]
    fn cfg_all_test_is_masked() {
        let src = "#[cfg(all(test, unix))] fn t() { thread_rng(); } fn prod() {}";
        let lx = lex(src);
        let mask = test_mask(&lx.toks);
        for (t, &m) in lx.toks.iter().zip(&mask) {
            if t.is_word("thread_rng") {
                assert!(m);
            }
            if t.is_word("prod") {
                assert!(!m);
            }
        }
    }

    #[test]
    fn raw_identifiers_lex_as_words() {
        let w = words("let r#type = 1; let rr = r#fn;");
        assert!(w.iter().any(|s| s == "type"));
        assert!(w.iter().any(|s| s == "fn"));
    }
}
