//! `ntt-lint` — dependency-free determinism & unsafe-discipline linter.
//!
//! The workspace's determinism contract (bit-identical results across
//! thread counts and hosts; see ROADMAP PR 2/4/7) is enforced at run
//! time by the 1-vs-4-thread test matrix. This crate is the
//! compile-time-style complement: a source scanner that rejects the
//! constructs which *silently* break that contract before any test can
//! notice — unordered map iteration, wall-clock reads in compute
//! crates, unseeded entropy — plus hygiene rules for `unsafe`,
//! `#[allow]`, atomic orderings, and panics on serving paths.
//!
//! Rules (see README "Static analysis" for rationale):
//!
//! - **R1** every `unsafe` needs an immediately preceding `// SAFETY:`
//!   (or doc `# Safety`) comment; `unsafe fn(..)` pointer *types* are
//!   exempt.
//! - **R2** no `HashMap`/`HashSet` in non-test code of the
//!   deterministic crates (tensor, nn, core, fleet, data, sim).
//! - **R3** no `Instant::now` / `SystemTime` outside obs, serve, bench, net.
//! - **R4** no `thread_rng` / `from_entropy` / `RandomState` anywhere.
//! - **R5** `#[allow(...)]` and non-`Relaxed` atomic `Ordering`s need a
//!   justification comment.
//! - **R6** `.unwrap()` / `.expect()` in `crates/serve` and
//!   `crates/net` needs a
//!   `// PANIC-OK:` style justification.
//!
//! Everything is built on a hand-rolled lexer ([`lexer`]) so matches
//! inside strings, comments, and `#[cfg(test)]` / `mod tests` regions
//! never fire. Reviewed exceptions live in `lint-waivers.txt`
//! ([`waivers`]); stale waivers fail the gate just like findings do.

pub mod lexer;
pub mod report;
pub mod rules;
pub mod waivers;

pub use rules::{scan_source, Finding};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Collect the workspace `.rs` files subject to linting, as paths
/// relative to `root`, sorted for deterministic output. Scope is
/// library/binary source only: `crates/*/src/**` and the root facade
/// `src/**`. Integration tests, benches, examples, and the vendored
/// crates are out of scope by construction (they are not reachable
/// from the scanned roots).
pub fn workspace_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut rel = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in fs::read_dir(&crates_dir)? {
            let src = entry?.path().join("src");
            if src.is_dir() {
                collect_rs(&src, &mut rel)?;
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(&root_src, &mut rel)?;
    }
    let mut out: Vec<PathBuf> = rel
        .into_iter()
        .map(|p| p.strip_prefix(root).map(Path::to_path_buf).unwrap_or(p))
        .collect();
    out.sort();
    Ok(out)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Normalize a relative path to the `/`-separated form used in
/// findings and waivers.
pub fn display_path(rel: &Path) -> String {
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Scan every in-scope file under `root` and return all findings,
/// ordered by (path, line).
pub fn scan_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for rel in workspace_files(root)? {
        let src = fs::read_to_string(root.join(&rel))?;
        findings.extend(scan_source(&display_path(&rel), &src));
    }
    findings.sort_by(|a, b| (a.path.as_str(), a.line).cmp(&(b.path.as_str(), b.line)));
    Ok(findings)
}

/// Load and parse `lint-waivers.txt` from `root`, if present. A parse
/// failure is returned as the error list; a missing file is simply an
/// empty waiver set.
pub fn load_waivers(root: &Path) -> Result<Vec<waivers::Waiver>, Vec<String>> {
    match fs::read_to_string(root.join("lint-waivers.txt")) {
        Ok(text) => waivers::parse(&text),
        Err(_) => Ok(Vec::new()),
    }
}
