//! Rules R1–R6: the determinism & unsafe-discipline contract.
//!
//! Each rule works on the token stream from [`crate::lexer`], never on
//! raw text, so occurrences inside strings, comments, and test modules
//! can never produce findings. Rules that demand an accompanying
//! comment (`R1`, `R5`, `R6`) resolve it through per-line bookkeeping:
//! a trailing comment on the same line, or a comment reached by walking
//! upward across blank lines, other comments, and attribute-only lines.

use crate::lexer::{lex, test_mask, Comment, Tok};

/// A single lint finding at a specific source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Rule id: "R1".."R6".
    pub rule: &'static str,
    pub message: String,
}

/// Crates whose library code must be bit-deterministic (R2 scope).
const DETERMINISTIC_CRATES: &[&str] = &["tensor", "nn", "core", "fleet", "data", "sim"];

/// Crates allowed to read the wall clock (R3 allowlist).
const WALLCLOCK_ALLOWED: &[&str] = &["obs", "serve", "bench", "net"];

/// Crates whose request paths carry the R6 unwrap/expect budget: code a
/// remote client can reach must answer with typed errors, not panics.
const PANIC_BUDGETED_CRATES: &[&str] = &["serve", "net"];

/// Atomic orderings stronger than `Relaxed` (R5b).
const STRONG_ORDERINGS: &[&str] = &["SeqCst", "Acquire", "Release", "AcqRel"];

/// Extract the crate name from a workspace-relative path:
/// `crates/tensor/src/...` → `tensor`; the root facade (`src/...`)
/// reports as `ntt`.
pub fn crate_of(path: &str) -> &str {
    let mut parts = path.split('/');
    if parts.next() == Some("crates") {
        if let Some(name) = parts.next() {
            return name;
        }
    }
    "ntt"
}

/// Per-line facts derived from the lex, used by comment-seeking rules.
struct LineFacts {
    /// Non-doc comment covers this line.
    nondoc_comment: Vec<bool>,
    /// Any comment covers this line; value is indices into `comments`.
    comment_at: Vec<Vec<usize>>,
    /// Line has at least one token that is not part of an attribute.
    code: Vec<bool>,
    /// Line has tokens, all of which belong to attributes.
    attr_only: Vec<bool>,
}

fn line_facts(toks: &[Tok], comments: &[Comment], max_line: u32) -> LineFacts {
    let n = max_line as usize + 2;
    let mut f = LineFacts {
        nondoc_comment: vec![false; n],
        comment_at: vec![Vec::new(); n],
        code: vec![false; n],
        attr_only: vec![false; n],
    };
    for (ci, c) in comments.iter().enumerate() {
        for l in c.start_line..=c.end_line {
            let l = l as usize;
            if l < n {
                f.comment_at[l].push(ci);
                if !c.doc {
                    f.nondoc_comment[l] = true;
                }
            }
        }
    }
    let attr = attribute_mask(toks);
    let mut has_tok = vec![false; n];
    let mut all_attr = vec![true; n];
    for (t, &a) in toks.iter().zip(&attr) {
        let l = t.line as usize;
        if l < n {
            has_tok[l] = true;
            if !a {
                all_attr[l] = false;
            }
        }
    }
    for l in 0..n {
        f.code[l] = has_tok[l] && !all_attr[l];
        f.attr_only[l] = has_tok[l] && all_attr[l];
    }
    f
}

/// Marks tokens belonging to `#[...]` / `#![...]` attributes.
fn attribute_mask(toks: &[Tok]) -> Vec<bool> {
    let n = toks.len();
    let mut mask = vec![false; n];
    let mut i = 0usize;
    while i < n {
        if toks[i].is_sym('#') {
            let inner = i + 1 < n && toks[i + 1].is_sym('!');
            let lb = i + if inner { 2 } else { 1 };
            if lb < n && toks[lb].is_sym('[') {
                let mut depth = 0usize;
                let mut j = lb;
                while j < n {
                    if toks[j].is_sym('[') {
                        depth += 1;
                    } else if toks[j].is_sym(']') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    j += 1;
                }
                let end = j.min(n - 1);
                for m in mask.iter_mut().take(end + 1).skip(i) {
                    *m = true;
                }
                i = end + 1;
                continue;
            }
        }
        i += 1;
    }
    mask
}

/// True if a comment whose text satisfies `pred` accompanies line `at`:
/// trailing on the same line, or reached by walking upward across
/// comments, blank lines, and attribute-only lines — stopping at the
/// first real code line.
fn has_comment_above(
    facts: &LineFacts,
    comments: &[Comment],
    at: u32,
    pred: impl Fn(&Comment) -> bool,
) -> bool {
    let n = facts.code.len();
    let at = at as usize;
    if at < n {
        for &ci in &facts.comment_at[at] {
            if comments[ci].start_line as usize == at && pred(&comments[ci]) {
                return true;
            }
        }
    }
    let mut l = at.saturating_sub(1);
    while l >= 1 {
        if l >= n {
            break;
        }
        if !facts.comment_at[l].is_empty() {
            let mut jump_to = l;
            for &ci in &facts.comment_at[l] {
                if pred(&comments[ci]) {
                    return true;
                }
                jump_to = jump_to.min(comments[ci].start_line as usize);
            }
            if facts.code[l] {
                // Comment trails real code on this line; if it did not
                // satisfy the predicate, the walk ends here.
                return false;
            }
            l = jump_to.saturating_sub(1);
            continue;
        }
        if facts.code[l] {
            return false;
        }
        // Blank or attribute-only line: keep walking.
        l -= 1;
    }
    false
}

fn contains_ci(haystack: &str, needle: &str) -> bool {
    haystack.to_ascii_lowercase().contains(needle)
}

/// Lint one file. `path` must be workspace-relative with `/` separators.
pub fn scan_source(path: &str, src: &str) -> Vec<Finding> {
    let lexed = lex(src);
    let toks = &lexed.toks;
    let mask = test_mask(toks);
    let max_line = toks
        .iter()
        .map(|t| t.line)
        .chain(lexed.comments.iter().map(|c| c.end_line))
        .max()
        .unwrap_or(1);
    let facts = line_facts(toks, &lexed.comments, max_line);
    let krate = crate_of(path);
    let deterministic = DETERMINISTIC_CRATES.contains(&krate);
    let clock_ok = WALLCLOCK_ALLOWED.contains(&krate);
    let panic_budgeted = PANIC_BUDGETED_CRATES.contains(&krate);
    let mut out = Vec::new();
    let mut push = |line: u32, rule: &'static str, message: String| {
        out.push(Finding {
            path: path.to_string(),
            line,
            rule,
            message,
        });
    };

    let n = toks.len();
    for i in 0..n {
        if mask[i] {
            continue;
        }
        let t = &toks[i];

        // R1: unsafe needs // SAFETY: (doc "# Safety" also accepted).
        if t.is_word("unsafe") {
            // Exempt fn-pointer types: `unsafe fn(..)`, `unsafe extern "C" fn(..)`.
            let mut j = i + 1;
            if j < n && toks[j].is_word("extern") {
                j += 1;
            }
            let is_fn_ptr = j + 1 < n && toks[j].is_word("fn") && toks[j + 1].is_sym('(');
            if !is_fn_ptr
                && !has_comment_above(&facts, &lexed.comments, t.line, |c| {
                    contains_ci(&c.text, "safety")
                })
            {
                push(
                    t.line,
                    "R1",
                    "`unsafe` without an immediately preceding `// SAFETY:` comment".into(),
                );
            }
        }

        // R2: no HashMap/HashSet in deterministic crates.
        if deterministic && (t.is_word("HashMap") || t.is_word("HashSet")) {
            push(
                t.line,
                "R2",
                format!(
                    "`{}` in deterministic crate `{}` — iteration order is \
                     unstable; use BTreeMap/BTreeSet or sort keys",
                    t.word().unwrap_or_default(),
                    krate
                ),
            );
        }

        // R3: no wall clock outside obs/serve/bench.
        if !clock_ok {
            if t.is_word("Instant")
                && i + 2 < n
                && toks[i + 1].is_sym(':')
                && toks[i + 2].is_sym(':')
                && i + 3 < n
                && toks[i + 3].is_word("now")
            {
                push(
                    t.line,
                    "R3",
                    format!(
                        "`Instant::now()` in crate `{krate}` — wall clock reads \
                         belong in obs/serve/bench/net (use `ntt_obs::Stopwatch`)"
                    ),
                );
            }
            if t.is_word("SystemTime") {
                push(
                    t.line,
                    "R3",
                    format!(
                        "`SystemTime` in crate `{krate}` — wall clock reads \
                         belong in obs/serve/bench/net"
                    ),
                );
            }
        }

        // R4: no unseeded entropy anywhere.
        if t.is_word("thread_rng") || t.is_word("from_entropy") || t.is_word("RandomState") {
            push(
                t.line,
                "R4",
                format!(
                    "`{}` is unseeded entropy — all randomness must flow from \
                     an explicit seed",
                    t.word().unwrap_or_default()
                ),
            );
        }

        // R5a: #[allow(...)] needs a justification comment (non-doc).
        if t.is_sym('#') {
            let inner = i + 1 < n && toks[i + 1].is_sym('!');
            let lb = i + if inner { 2 } else { 1 };
            if lb + 1 < n && toks[lb].is_sym('[') && toks[lb + 1].is_word("allow") {
                let justified = has_comment_above(&facts, &lexed.comments, t.line, |c| !c.doc);
                if !justified {
                    push(
                        t.line,
                        "R5",
                        "`#[allow(...)]` without a justification comment".into(),
                    );
                }
            }
        }

        // R5b: non-Relaxed atomic orderings need a justification comment.
        if t.is_word("Ordering") && i + 3 < n && toks[i + 1].is_sym(':') && toks[i + 2].is_sym(':')
        {
            if let Some(w) = toks[i + 3].word() {
                if STRONG_ORDERINGS.contains(&w)
                    && !has_comment_above(&facts, &lexed.comments, t.line, |c| !c.doc)
                {
                    push(
                        t.line,
                        "R5",
                        format!(
                            "`Ordering::{w}` without a justification comment \
                             (why is Relaxed not enough?)"
                        ),
                    );
                }
            }
        }

        // R6: unwrap()/expect() budget on serving paths (serve + net).
        if panic_budgeted
            && t.is_sym('.')
            && i + 2 < n
            && (toks[i + 1].is_word("unwrap") || toks[i + 1].is_word("expect"))
            && toks[i + 2].is_sym('(')
        {
            let justified =
                has_comment_above(&facts, &lexed.comments, toks[i + 1].line, |c| !c.doc);
            if !justified {
                push(
                    toks[i + 1].line,
                    "R6",
                    format!(
                        "`.{}()` on a serving path — return a typed error, or \
                         justify with a `// PANIC-OK:` comment",
                        toks[i + 1].word().unwrap_or_default()
                    ),
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_hit(path: &str, src: &str) -> Vec<&'static str> {
        scan_source(path, src).into_iter().map(|f| f.rule).collect()
    }

    // ---- R1 ----

    #[test]
    fn r1_flags_bare_unsafe_block() {
        let src = "fn f() { unsafe { core::hint::unreachable_unchecked() } }";
        assert_eq!(rules_hit("crates/tensor/src/x.rs", src), vec!["R1"]);
    }

    #[test]
    fn r1_accepts_safety_comment_above() {
        let src = "fn f() {\n    // SAFETY: bounds checked above.\n    unsafe { op() }\n}";
        assert!(rules_hit("crates/tensor/src/x.rs", src).is_empty());
    }

    #[test]
    fn r1_accepts_trailing_safety_comment() {
        let src = "fn f() { unsafe { op() } // SAFETY: caller contract.\n}";
        assert!(rules_hit("crates/tensor/src/x.rs", src).is_empty());
    }

    #[test]
    fn r1_accepts_doc_safety_section_through_attributes() {
        let src = "/// Does things.\n///\n/// # Safety\n/// Caller must own the pointer.\n\
                   #[cfg(target_arch = \"x86_64\")]\n#[target_feature(enable = \"avx2\")]\n\
                   pub unsafe fn micro(p: *mut f32) {}";
        assert!(rules_hit("crates/tensor/src/x.rs", src).is_empty());
    }

    #[test]
    fn r1_exempts_fn_pointer_types() {
        let src = "type MicroFn = unsafe fn(*const f32, *mut f32);\n\
                   type ExternFn = unsafe extern \"C\" fn() -> i32;";
        assert!(rules_hit("crates/tensor/src/x.rs", src).is_empty());
    }

    #[test]
    fn r1_ignores_unsafe_in_strings_and_comments() {
        let src = "// an unsafe remark\nfn f() { let s = \"unsafe { }\"; let r = r#\"unsafe\"#; }";
        assert!(rules_hit("crates/tensor/src/x.rs", src).is_empty());
    }

    #[test]
    fn r1_unrelated_comment_does_not_count() {
        let src = "fn f() {\n    // fast path\n    unsafe { op() }\n}";
        assert_eq!(rules_hit("crates/tensor/src/x.rs", src), vec!["R1"]);
    }

    // ---- R2 ----

    #[test]
    fn r2_flags_hashmap_in_deterministic_crate() {
        let src = "use std::collections::HashMap;\nfn f() -> HashMap<u8, u8> { HashMap::new() }";
        let hits = rules_hit("crates/core/src/x.rs", src);
        assert_eq!(hits.len(), 3);
        assert!(hits.iter().all(|r| *r == "R2"));
    }

    #[test]
    fn r2_allows_hashmap_outside_deterministic_crates() {
        let src = "use std::collections::HashMap;";
        assert!(rules_hit("crates/obs/src/x.rs", src).is_empty());
    }

    #[test]
    fn r2_allows_hashmap_in_test_module() {
        let src = "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}";
        assert!(rules_hit("crates/sim/src/x.rs", src).is_empty());
    }

    // ---- R3 ----

    #[test]
    fn r3_flags_instant_now_and_systemtime() {
        let src =
            "fn f() { let t = std::time::Instant::now(); }\nfn g(x: std::time::SystemTime) {}";
        let hits = rules_hit("crates/fleet/src/x.rs", src);
        assert_eq!(hits, vec!["R3", "R3"]);
    }

    #[test]
    fn r3_allows_wall_clock_in_allowlisted_crates() {
        let src = "fn f() { let t = std::time::Instant::now(); }";
        assert!(rules_hit("crates/obs/src/x.rs", src).is_empty());
        assert!(rules_hit("crates/serve/src/x.rs", src).is_empty());
        assert!(rules_hit("crates/bench/src/x.rs", src).is_empty());
        // The wire tier measures deadlines and gather windows.
        assert!(rules_hit("crates/net/src/x.rs", src).is_empty());
    }

    #[test]
    fn r3_does_not_flag_instant_type_uses() {
        // Holding or comparing Instants is fine; only the read is banned.
        let src = "use std::time::Instant;\nfn f(a: Instant, b: Instant) -> bool { a < b }";
        assert!(rules_hit("crates/fleet/src/x.rs", src).is_empty());
    }

    // ---- R4 ----

    #[test]
    fn r4_flags_unseeded_entropy_everywhere() {
        let src = "fn f() { let r = thread_rng(); }";
        assert_eq!(rules_hit("crates/obs/src/x.rs", src), vec!["R4"]);
        let src2 = "fn g() { let s = RandomState::new(); }";
        assert_eq!(rules_hit("crates/serve/src/x.rs", src2), vec!["R4"]);
        let src3 = "fn h() { let r = SmallRng::from_entropy(); }";
        assert_eq!(rules_hit("src/lib.rs", src3), vec!["R4"]);
    }

    // ---- R5 ----

    #[test]
    fn r5_flags_unjustified_allow() {
        let src = "#[allow(dead_code)]\nfn f() {}";
        assert_eq!(rules_hit("crates/nn/src/x.rs", src), vec!["R5"]);
    }

    #[test]
    fn r5_accepts_trailing_or_preceding_comment() {
        let src = "#[allow(dead_code)] // kept for the serde seam\nfn f() {}\n\
                   // staged API, wired in next PR\n#[allow(unused)]\nfn g() {}";
        assert!(rules_hit("crates/nn/src/x.rs", src).is_empty());
    }

    #[test]
    fn r5_doc_comment_is_not_justification() {
        let src = "/// Frobnicates.\n#[allow(dead_code)]\nfn f() {}";
        assert_eq!(rules_hit("crates/nn/src/x.rs", src), vec!["R5"]);
    }

    #[test]
    fn r5_flags_strong_ordering_without_comment() {
        let src = "fn f(a: &AtomicUsize) { a.load(Ordering::SeqCst); }";
        assert_eq!(rules_hit("crates/obs/src/x.rs", src), vec!["R5"]);
    }

    #[test]
    fn r5_accepts_justified_ordering_and_ignores_relaxed_and_cmp() {
        let src = "fn f(a: &AtomicUsize) {\n\
                   a.load(Ordering::Relaxed);\n\
                   // pairs with the Release store in push()\n\
                   a.load(Ordering::Acquire);\n\
                   let _ = std::cmp::Ordering::Less;\n}";
        assert!(rules_hit("crates/obs/src/x.rs", src).is_empty());
    }

    // ---- R6 ----

    #[test]
    fn r6_flags_unwrap_and_expect_in_serve() {
        let src =
            "fn f(x: Option<u8>) { x.unwrap(); }\nfn g(x: Option<u8>) { x.expect(\"boom\"); }";
        assert_eq!(rules_hit("crates/serve/src/x.rs", src), vec!["R6", "R6"]);
    }

    #[test]
    fn r6_accepts_panic_ok_comment() {
        let src = "fn f(x: Option<u8>) {\n    // PANIC-OK: invariant checked at construction.\n    x.unwrap();\n}";
        assert!(rules_hit("crates/serve/src/x.rs", src).is_empty());
    }

    #[test]
    fn r6_only_applies_to_serving_crates_and_not_tests() {
        let src = "fn f(x: Option<u8>) { x.unwrap(); }";
        assert!(rules_hit("crates/core/src/x.rs", src).is_empty());
        let test_src = "#[cfg(test)]\nmod tests { fn f(x: Option<u8>) { x.unwrap(); } }";
        assert!(rules_hit("crates/serve/src/x.rs", test_src).is_empty());
        assert!(rules_hit("crates/net/src/x.rs", test_src).is_empty());
    }

    #[test]
    fn r6_covers_net_request_paths() {
        // A remote client reaches crates/net code directly: the same
        // no-panic budget as crates/serve applies.
        let src = "fn f(x: Option<u8>) { x.unwrap(); }";
        assert_eq!(rules_hit("crates/net/src/server.rs", src), vec!["R6"]);
        let ok = "fn f(x: Option<u8>) {\n    // PANIC-OK: checked above.\n    x.unwrap();\n}";
        assert!(rules_hit("crates/net/src/server.rs", ok).is_empty());
    }

    #[test]
    fn r6_does_not_flag_unwrap_or_else() {
        let src = "fn f(x: Result<u8, u8>) { x.unwrap_or_else(|e| e); }";
        assert!(rules_hit("crates/serve/src/x.rs", src).is_empty());
    }

    // ---- crate_of ----

    #[test]
    fn crate_of_extracts_names() {
        assert_eq!(crate_of("crates/tensor/src/kernels.rs"), "tensor");
        assert_eq!(crate_of("src/lib.rs"), "ntt");
    }
}
