//! Human-readable and JSON output for findings.
//!
//! The JSON writer is hand-rolled (the crate is dependency-free by
//! contract); the schema is flat and stable so CI artifacts diff well:
//!
//! ```json
//! {
//!   "total": 3,
//!   "unwaived": 1,
//!   "findings": [
//!     {"path": "...", "line": 7, "rule": "R2", "message": "...", "waived": false}
//!   ]
//! }
//! ```

use crate::rules::Finding;

/// One rendered line: `path:line: [rule] message`.
pub fn human_line(f: &Finding) -> String {
    format!("{}:{}: [{}] {}", f.path, f.line, f.rule, f.message)
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render all findings (waived and not) as a JSON document.
pub fn json_report(findings: &[Finding], waived: &[&Finding]) -> String {
    let is_waived = |f: &Finding| waived.iter().any(|w| std::ptr::eq(*w, f));
    let unwaived = findings.iter().filter(|f| !is_waived(f)).count();
    let mut out = String::new();
    out.push_str(&format!(
        "{{\n  \"total\": {},\n  \"unwaived\": {},\n  \"findings\": [",
        findings.len(),
        unwaived
    ));
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"path\": \"{}\", \"line\": {}, \"rule\": \"{}\", \
             \"message\": \"{}\", \"waived\": {}}}",
            json_escape(&f.path),
            f.line,
            f.rule,
            json_escape(&f.message),
            is_waived(f)
        ));
    }
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(path: &str, line: u32, rule: &'static str, msg: &str) -> Finding {
        Finding {
            path: path.into(),
            line,
            rule,
            message: msg.into(),
        }
    }

    #[test]
    fn human_line_format() {
        let f = finding("a/b.rs", 7, "R2", "no HashMap");
        assert_eq!(human_line(&f), "a/b.rs:7: [R2] no HashMap");
    }

    #[test]
    fn json_escapes_and_counts() {
        let fs = vec![
            finding("a/b.rs", 1, "R1", "say \"why\""),
            finding("a/c.rs", 2, "R4", "tab\there"),
        ];
        let waived: Vec<&Finding> = vec![&fs[1]];
        let j = json_report(&fs, &waived);
        assert!(j.contains("\"total\": 2"));
        assert!(j.contains("\"unwaived\": 1"));
        assert!(j.contains("say \\\"why\\\""));
        assert!(j.contains("tab\\there"));
        assert!(j.contains("\"waived\": true"));
    }
}
