//! The workspace-wide gate, as a test: `cargo test -p ntt-lint` fails
//! the moment anyone introduces an unwaived violation, even before CI
//! runs the `--check` binary.

use std::path::Path;

fn workspace_root() -> &'static Path {
    // crates/lint -> crates -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("lint crate lives two levels below the workspace root")
}

#[test]
fn workspace_has_no_unwaived_findings() {
    let root = workspace_root();
    let findings = ntt_lint::scan_workspace(root).expect("workspace scan");
    let waivers = match ntt_lint::load_waivers(root) {
        Ok(w) => w,
        Err(errs) => panic!("lint-waivers.txt does not parse:\n{}", errs.join("\n")),
    };
    let applied = ntt_lint::waivers::apply(&findings, &waivers);
    assert!(
        applied.unwaived.is_empty(),
        "unwaived lint findings:\n{}",
        applied
            .unwaived
            .iter()
            .map(|f| ntt_lint::report::human_line(f))
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        applied.unused.is_empty(),
        "stale waivers (match no finding): {:?}",
        applied.unused
    );
}

#[test]
fn scan_covers_every_crate() {
    // The gate is only as strong as its coverage: every workspace
    // member under crates/ must contribute files to the scan, so a new
    // crate cannot silently fall outside the lint's reach.
    let root = workspace_root();
    let files = ntt_lint::workspace_files(root).expect("workspace scan");
    let mut crates: Vec<String> = std::fs::read_dir(root.join("crates"))
        .expect("crates dir")
        .filter_map(|e| {
            let e = e.ok()?;
            e.path()
                .join("src")
                .is_dir()
                .then(|| e.file_name().to_string_lossy().into_owned())
        })
        .collect();
    crates.sort();
    assert!(!crates.is_empty());
    for krate in &crates {
        let prefix = format!("crates/{krate}/");
        assert!(
            files
                .iter()
                .any(|f| ntt_lint::display_path(f).starts_with(&prefix)),
            "crate `{krate}` contributes no files to the lint scan"
        );
    }
    // And the scan must stay out of the vendored crates.
    assert!(files
        .iter()
        .all(|f| !ntt_lint::display_path(f).starts_with("vendor/")));
}

#[test]
fn seeded_violations_are_detected_end_to_end() {
    // One fixture exercising every rule at once, scanned through the
    // same public API the binary uses — proves the wiring, not just the
    // per-rule unit tests inside the crate.
    // Note: no trailing comments on (or right above) the R5/R6 lines —
    // any non-doc comment there would count as a justification.
    let fixture = r#"
use std::collections::HashMap;
fn clock() -> std::time::Duration {
    let t = std::time::Instant::now();
    t.elapsed()
}
fn entropy() { let _ = thread_rng(); }

#[allow(dead_code)]
fn allowed() {}
fn sync(a: &std::sync::atomic::AtomicUsize) {
    a.load(std::sync::atomic::Ordering::SeqCst);
}
fn danger() { unsafe { std::hint::unreachable_unchecked() } }
"#;
    let findings = ntt_lint::scan_source("crates/core/src/fixture.rs", fixture);
    let lines_of = |rule: &str| -> Vec<u32> {
        findings
            .iter()
            .filter(|f| f.rule == rule)
            .map(|f| f.line)
            .collect()
    };
    assert_eq!(lines_of("R1"), vec![14]);
    assert_eq!(lines_of("R2"), vec![2]);
    assert_eq!(lines_of("R3"), vec![4]);
    assert_eq!(lines_of("R4"), vec![7]);
    assert_eq!(lines_of("R5"), vec![9, 12]);

    // R6 needs a serve path.
    let serve_fixture = "fn f(x: Option<u8>) { x.unwrap(); }";
    let serve = ntt_lint::scan_source("crates/serve/src/fixture.rs", serve_fixture);
    assert_eq!(serve.len(), 1);
    assert_eq!(serve[0].rule, "R6");

    // A wildcard waiver suppresses them; a stale one is reported.
    let waivers = ntt_lint::waivers::parse(
        "crates/core/src/fixture.rs:*:R2 fixture\n\
         crates/core/src/fixture.rs:4:R3 fixture\n\
         crates/core/src/fixture.rs:999:R1 stale waiver\n",
    )
    .expect("waivers parse");
    let applied = ntt_lint::waivers::apply(&findings, &waivers);
    assert_eq!(applied.waived.len(), 2);
    assert_eq!(applied.unused.len(), 1);
    assert_eq!(applied.unwaived.len(), findings.len() - 2);
}
