//! Finite-difference gradient checking.
//!
//! Every backward rule on the tape is validated against a central
//! finite-difference approximation. This is the ground truth that lets
//! the rest of the workspace trust the autodiff engine.

#[cfg(test)]
use crate::Tensor;
use crate::{Param, Tape};

/// Result of a gradient check: worst absolute and relative error seen.
#[derive(Debug, Clone, Copy)]
pub struct GradCheckReport {
    pub max_abs_err: f32,
    pub max_rel_err: f32,
}

impl GradCheckReport {
    /// True when the analytic gradient matches finite differences to
    /// within `tol` in either absolute or relative terms per element.
    pub fn passes(&self, tol: f32) -> bool {
        self.max_abs_err <= tol || self.max_rel_err <= tol
    }
}

/// Identity helper that pins the higher-ranked lifetime of a loss-builder
/// closure. Rust's closure inference cannot deduce
/// `for<'a> Fn(&'a Tape) -> Var<'a>` for a closure bound to a variable;
/// passing it through this function fixes the signature.
pub fn loss_fn<F>(f: F) -> F
where
    F: for<'a> Fn(&'a Tape) -> crate::Var<'a>,
{
    f
}

/// Compare the analytic gradient of `f` w.r.t. `param` against central
/// finite differences with step `eps`.
///
/// `f` must build a scalar loss (shape `[1]`) on the provided tape from
/// the parameter's current value. It is invoked `2 * numel + 1` times.
pub fn check_param_grad(
    param: &Param,
    eps: f32,
    f: impl Fn(&Tape) -> crate::Var<'_>,
) -> GradCheckReport {
    // Every pass (analytic, bundle, finite differences) runs on a tape
    // with the same fixed seed: a stochastic graph (one drawing from
    // the tape RNG) then sees identical masks throughout, so the checks
    // compare gradients of the *same* function.
    const SEED: u64 = 0x67ad_c43c;

    // Analytic gradient, via the deposit path.
    param.zero_grad();
    {
        let tape = Tape::with_seed(SEED);
        let loss = f(&tape);
        assert_eq!(loss.shape(), vec![1], "grad check requires scalar loss");
        tape.backward(loss);
    }
    let analytic = param.grad();

    // The detached-bundle path (worker-thread half of data-parallel
    // training) must agree bit-for-bit with the deposited slots.
    {
        let tape = Tape::with_seed(SEED);
        let loss = f(&tape);
        let bundle = tape.backward_params(loss);
        let from_bundle = bundle
            .get(param)
            .expect("param missing from gradient bundle");
        assert_eq!(
            from_bundle,
            &analytic,
            "backward_params diverged from backward for {}",
            param.name()
        );
    }

    // Numeric gradient, one coordinate at a time.
    let base = param.value();
    let n = base.numel();
    let mut max_abs = 0.0f32;
    let mut max_rel = 0.0f32;
    for i in 0..n {
        let mut plus = base.clone();
        plus.data_mut()[i] += eps;
        param.set_value(plus);
        let lp = {
            let tape = Tape::with_seed(SEED);
            f(&tape).value().item()
        };
        let mut minus = base.clone();
        minus.data_mut()[i] -= eps;
        param.set_value(minus);
        let lm = {
            let tape = Tape::with_seed(SEED);
            f(&tape).value().item()
        };
        let numeric = (lp - lm) / (2.0 * eps);
        let a = analytic.data()[i];
        let abs = (a - numeric).abs();
        let rel = abs / a.abs().max(numeric.abs()).max(1e-6);
        max_abs = max_abs.max(abs);
        max_rel = max_rel.max(rel);
    }
    param.set_value(base);
    GradCheckReport {
        max_abs_err: max_abs,
        max_rel_err: max_rel,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(param: &Param, f: impl Fn(&Tape) -> crate::Var<'_>) {
        let report = check_param_grad(param, 1e-2, f);
        assert!(
            report.passes(2e-2),
            "gradient check failed: {report:?} for {}",
            param.name()
        );
    }

    #[test]
    fn matmul_grads() {
        let w = Param::new("w", Tensor::randn(&[4, 3], 1).map(|x| x * 0.5));
        let x = Tensor::randn(&[2, 4], 2);
        let t = Tensor::randn(&[2, 3], 3);
        check(&w, |tape| {
            tape.input(x.clone()).matmul(tape.param(&w)).mse_loss(&t)
        });
    }

    #[test]
    fn batched_matmul_grads() {
        let w = Param::new("w", Tensor::randn(&[2, 3, 2], 4).map(|x| x * 0.5));
        let x = Tensor::randn(&[2, 2, 3], 5);
        let t = Tensor::randn(&[2, 2, 2], 6);
        check(&w, |tape| {
            tape.input(x.clone()).matmul(tape.param(&w)).mse_loss(&t)
        });
    }

    #[test]
    fn softmax_grads() {
        let w = Param::new("w", Tensor::randn(&[3, 5], 7));
        let t = Tensor::randn(&[3, 5], 8);
        check(&w, |tape| tape.param(&w).softmax_last().mse_loss(&t));
    }

    #[test]
    fn scaled_softmax_grads() {
        // The fused scale+softmax kernel, at the attention scale (1/√dh)
        // and at a scale > 1 to catch a dropped factor.
        for scale in [0.25f32, 1.7] {
            let w = Param::new("w", Tensor::randn(&[3, 5], 31));
            let t = Tensor::randn(&[3, 5], 32);
            check(&w, |tape| {
                tape.param(&w).scaled_softmax_last(scale).mse_loss(&t)
            });
        }
    }

    #[test]
    fn attn_scores_and_context_grads() {
        // The transpose-free attention products, checked through the
        // full fused chain for all three operands.
        let (b, t_len, h, dh) = (2usize, 3, 2, 2);
        let q = Param::new("q", Tensor::randn(&[b, t_len, h, dh], 41).map(|v| v * 0.5));
        let k = Param::new("k", Tensor::randn(&[b, t_len, h, dh], 42).map(|v| v * 0.5));
        let v = Param::new("v", Tensor::randn(&[b, t_len, h, dh], 43).map(|v| v * 0.5));
        let target = Tensor::randn(&[b, t_len, h, dh], 44);
        let f = loss_fn(|tape: &Tape| {
            tape.param(&q)
                .attn_scores(tape.param(&k))
                .scaled_softmax_last(1.0 / (dh as f32).sqrt())
                .attn_context(tape.param(&v))
                .mse_loss(&target)
        });
        for p in [&q, &k, &v] {
            p.zero_grad();
            check(p, f);
        }
    }

    #[test]
    fn activations_grads() {
        for (name, which) in [("relu", 0), ("gelu", 1), ("tanh", 2)] {
            let w = Param::new(name, Tensor::randn(&[2, 6], 9).map(|x| x * 1.5 + 0.1));
            let t = Tensor::randn(&[2, 6], 10);
            check(&w, |tape| {
                let x = tape.param(&w);
                let y = match which {
                    0 => x.relu(),
                    1 => x.gelu(),
                    _ => x.tanh(),
                };
                y.mse_loss(&t)
            });
        }
    }

    #[test]
    fn layer_norm_grads_all_three_inputs() {
        let x = Param::new("x", Tensor::randn(&[3, 8], 11));
        let gamma = Param::new("gamma", Tensor::randn(&[8], 12).map(|v| v * 0.3 + 1.0));
        let beta = Param::new("beta", Tensor::randn(&[8], 13).map(|v| v * 0.3));
        let t = Tensor::randn(&[3, 8], 14);
        let f = loss_fn(|tape: &Tape| {
            tape.param(&x)
                .layer_norm(tape.param(&gamma), tape.param(&beta), 1e-5)
                .mse_loss(&t)
        });
        check(&x, f);
        check(&gamma, f);
        check(&beta, f);
    }

    #[test]
    fn broadcast_add_grads() {
        // bias [D] broadcast over [B, T, D]
        let b = Param::new("b", Tensor::randn(&[3], 15));
        let x = Tensor::randn(&[2, 4, 3], 16);
        let t = Tensor::randn(&[2, 4, 3], 17);
        check(&b, |tape| {
            tape.input(x.clone()).add(tape.param(&b)).mse_loss(&t)
        });
        // positional encoding [T, D] broadcast over [B, T, D]
        let pe = Param::new("pe", Tensor::randn(&[4, 3], 18));
        check(&pe, |tape| {
            tape.input(x.clone()).add(tape.param(&pe)).mse_loss(&t)
        });
    }

    #[test]
    fn sequence_ops_grads() {
        let x = Param::new("x", Tensor::randn(&[2, 6, 3], 19));
        let t2 = Tensor::randn(&[2, 3], 20);
        check(&x, |tape| tape.param(&x).select_axis1(5).mse_loss(&t2));
        check(&x, |tape| tape.param(&x).mean_axis1().mse_loss(&t2));
        let t3 = Tensor::randn(&[2, 4, 3], 21);
        check(&x, |tape| tape.param(&x).slice_axis1(1, 4).mse_loss(&t3));
    }

    #[test]
    fn transpose_and_reshape_grads() {
        let x = Param::new("x", Tensor::randn(&[2, 3, 4], 22));
        let t = Tensor::randn(&[2, 4, 3], 23);
        check(&x, |tape| tape.param(&x).transpose_last2().mse_loss(&t));
        let t2 = Tensor::randn(&[6, 4], 24);
        check(&x, |tape| tape.param(&x).reshape(&[6, 4]).mse_loss(&t2));
    }

    #[test]
    fn transpose_axes_1_2_grads() {
        let x = Param::new("x", Tensor::randn(&[2, 3, 4, 2], 29));
        let t = Tensor::randn(&[2, 4, 3, 2], 30);
        check(&x, |tape| tape.param(&x).transpose_axes_1_2().mse_loss(&t));
    }

    #[test]
    fn composite_mlp_grads() {
        // A 2-layer MLP with layer norm: the full op mix used by the NTT.
        let w1 = Param::new("w1", Tensor::randn(&[4, 8], 25).map(|x| x * 0.4));
        let b1 = Param::new("b1", Tensor::zeros(&[8]));
        let w2 = Param::new("w2", Tensor::randn(&[8, 2], 26).map(|x| x * 0.4));
        let g = Param::new("g", Tensor::ones(&[8]));
        let be = Param::new("be", Tensor::zeros(&[8]));
        let x = Tensor::randn(&[3, 4], 27);
        let t = Tensor::randn(&[3, 2], 28);
        let f = loss_fn(|tape: &Tape| {
            tape.input(x.clone())
                .matmul(tape.param(&w1))
                .add(tape.param(&b1))
                .layer_norm(tape.param(&g), tape.param(&be), 1e-5)
                .gelu()
                .matmul(tape.param(&w2))
                .mse_loss(&t)
        });
        for p in [&w1, &b1, &w2, &g, &be] {
            p.zero_grad();
            check(p, f);
        }
    }
}
