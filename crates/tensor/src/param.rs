//! Trainable parameters.
//!
//! A [`Param`] is a shared, named tensor with an accompanying gradient
//! accumulator. The tape holds clones of the handle so that `backward`
//! can deposit gradients directly into the parameter, and optimizers
//! iterate over the same handles to apply updates. Storage is
//! `Arc<RwLock<..>>` so parameter sets are `Send + Sync`: the
//! data-parallel trainer shares one model across worker threads, each
//! running its own forward/backward over a microbatch. Workers only
//! *read* values (gradient reduction happens in a fixed order on the
//! coordinating thread via `ParamGrads`), so the lock is effectively
//! uncontended on the hot path.

use crate::Tensor;
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

#[derive(Debug)]
struct ParamInner {
    name: String,
    value: Tensor,
    grad: Tensor,
    /// Frozen parameters receive no gradient and are skipped by
    /// optimizers — this implements the paper's "decoder only"
    /// fine-tuning mode (Table 2).
    trainable: bool,
}

/// Shared handle to a trainable tensor (`Send + Sync`; clones share
/// storage and identity).
#[derive(Clone, Debug)]
pub struct Param(Arc<RwLock<ParamInner>>);

impl Param {
    /// Create a parameter initialized to `value`.
    pub fn new(name: impl Into<String>, value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape());
        Param(Arc::new(RwLock::new(ParamInner {
            name: name.into(),
            value,
            grad,
            trainable: true,
        })))
    }

    /// Read lock, tolerating poison: a panic mid-update in another
    /// thread (e.g. a failed shape assert under test) must not cascade
    /// into every later accessor.
    fn read(&self) -> RwLockReadGuard<'_, ParamInner> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write(&self) -> RwLockWriteGuard<'_, ParamInner> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Parameter name (used in checkpoints and diagnostics).
    pub fn name(&self) -> String {
        self.read().name.clone()
    }

    /// Clone of the current value.
    pub fn value(&self) -> Tensor {
        self.read().value.clone()
    }

    /// Run `f` against the current value under the read lock, without
    /// cloning it. The tape uses this to take arena-pooled copies; the
    /// serving engine uses it for zero-copy weight reads.
    pub fn with_value<R>(&self, f: impl FnOnce(&Tensor) -> R) -> R {
        f(&self.read().value)
    }

    /// Shape of the value.
    pub fn shape(&self) -> Vec<usize> {
        self.read().value.shape().to_vec()
    }

    /// Number of scalar parameters.
    pub fn numel(&self) -> usize {
        self.read().value.numel()
    }

    /// Clone of the accumulated gradient.
    pub fn grad(&self) -> Tensor {
        self.read().grad.clone()
    }

    /// Replace the value (e.g. when loading a checkpoint).
    pub fn set_value(&self, value: Tensor) {
        let mut inner = self.write();
        assert_eq!(
            inner.value.shape(),
            value.shape(),
            "set_value shape mismatch for {}",
            inner.name
        );
        inner.value = value;
    }

    /// Add `g` into the gradient accumulator (no-op when frozen).
    pub fn accumulate_grad(&self, g: &Tensor) {
        let mut inner = self.write();
        if inner.trainable {
            inner.grad.add_assign(g);
        }
    }

    /// Reset the gradient to zero.
    pub fn zero_grad(&self) {
        self.write().grad.zero_();
    }

    /// Whether optimizers should update this parameter.
    pub fn is_trainable(&self) -> bool {
        self.read().trainable
    }

    /// Freeze or unfreeze the parameter.
    pub fn set_trainable(&self, trainable: bool) {
        self.write().trainable = trainable;
    }

    /// Mutate value and gradient together (the optimizer update hook).
    pub fn update(&self, f: impl FnOnce(&mut Tensor, &Tensor)) {
        let inner = &mut *self.write();
        f(&mut inner.value, &inner.grad);
    }

    /// Stable identity for optimizer state maps (two clones of the same
    /// `Param` compare equal).
    pub fn key(&self) -> usize {
        Arc::as_ptr(&self.0) as usize
    }
}

impl PartialEq for Param {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}
impl Eq for Param {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_and_grad_lifecycle() {
        let p = Param::new("w", Tensor::from_vec(vec![1.0, 2.0], &[2]));
        assert_eq!(p.name(), "w");
        assert_eq!(p.grad().data(), &[0.0, 0.0]);
        p.accumulate_grad(&Tensor::from_vec(vec![0.5, 0.5], &[2]));
        p.accumulate_grad(&Tensor::from_vec(vec![0.5, 1.0], &[2]));
        assert_eq!(p.grad().data(), &[1.0, 1.5]);
        p.zero_grad();
        assert_eq!(p.grad().data(), &[0.0, 0.0]);
    }

    #[test]
    fn frozen_params_reject_gradients() {
        let p = Param::new("w", Tensor::zeros(&[2]));
        p.set_trainable(false);
        p.accumulate_grad(&Tensor::ones(&[2]));
        assert_eq!(p.grad().data(), &[0.0, 0.0]);
        assert!(!p.is_trainable());
        p.set_trainable(true);
        p.accumulate_grad(&Tensor::ones(&[2]));
        assert_eq!(p.grad().data(), &[1.0, 1.0]);
    }

    #[test]
    fn update_sees_value_and_grad() {
        let p = Param::new("w", Tensor::from_vec(vec![1.0], &[1]));
        p.accumulate_grad(&Tensor::from_vec(vec![10.0], &[1]));
        p.update(|v, g| {
            v.data_mut()[0] -= 0.1 * g.data()[0];
        });
        assert!((p.value().data()[0] - 0.0).abs() < 1e-6);
    }

    #[test]
    fn clones_share_identity() {
        let p = Param::new("w", Tensor::zeros(&[1]));
        let q = p.clone();
        assert_eq!(p, q);
        assert_eq!(p.key(), q.key());
        q.accumulate_grad(&Tensor::ones(&[1]));
        assert_eq!(p.grad().data(), &[1.0]);
        let r = Param::new("w", Tensor::zeros(&[1]));
        assert_ne!(p, r);
    }

    #[test]
    #[should_panic(expected = "set_value shape mismatch")]
    fn set_value_checks_shape() {
        let p = Param::new("w", Tensor::zeros(&[2]));
        p.set_value(Tensor::zeros(&[3]));
    }

    #[test]
    fn params_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Param>();
        // Shared reads from another thread observe the same storage.
        let p = Param::new("w", Tensor::from_vec(vec![7.0], &[1]));
        let q = p.clone();
        std::thread::spawn(move || {
            assert_eq!(q.value().data(), &[7.0]);
            q.accumulate_grad(&Tensor::ones(&[1]));
        })
        .join()
        .unwrap();
        assert_eq!(p.grad().data(), &[1.0]);
    }
}
