//! Reverse-mode automatic differentiation on a tape.
//!
//! A [`Tape`] records every operation of one forward pass as a node in a
//! flat arena; [`Var`] is a copyable handle (tape reference + node index).
//! Backward comes in two halves so the data-parallel trainer can run
//! microbatches on worker threads:
//! * [`Tape::backward_params`] walks the arena in reverse and *collects*
//!   per-parameter gradients into a [`ParamGrads`] bundle without
//!   touching any `Param` — the bundle is `Send`, so worker threads can
//!   produce one per microbatch and the coordinator reduces them in a
//!   fixed shard-index order (bit-identical for any thread count);
//! * [`Tape::backward`] is the single-threaded convenience that collects
//!   and immediately deposits into the [`Param`] gradient slots.
//!
//! # Scratch arena
//!
//! Every tensor the tape allocates — forward intermediates, backward
//! gradient buffers — is drawn from a tape-owned scratch arena (a pool
//! of retired `Vec<f32>` buffers bucketed by length). [`Tape::reset`]
//! clears the recorded graph, returns every node's buffer to the arena,
//! and reseeds the RNG stream: a training loop that resets one tape per
//! optimizer step (instead of dropping and reallocating it) reuses the
//! same memory step after step, eliminating allocator churn on the hot
//! path. `backward_params` additionally retires each intermediate
//! gradient the moment its node has been processed, so a step's backward
//! pass mostly recycles its own buffers. The arena only changes *where
//! buffers come from*, never their contents — results are bit-identical
//! with or without reuse.
//!
//! One tape lives for one microbatch (and is reset, not rebuilt, for the
//! next) — there is no graph reuse, no aliasing, and therefore no
//! cache-invalidation subtlety. Each tape also carries a deterministic
//! RNG stream ([`Tape::with_seed`], [`Tape::rng_next`]) that stochastic
//! layers (dropout) draw from, so a microbatch's forward pass is a pure
//! function of its inputs and seed regardless of which thread runs it.
//!
//! # Inference mode
//!
//! A tape built with [`Tape::inference`] records no backward metadata:
//! every node degrades to a leaf, backward-only tensors (layer-norm
//! `xhat`, dropout masks, MSE targets, fused-attention softmax stats)
//! are never materialized, and no gradient slot is ever allocated.
//! [`Tape::backward`] / [`Tape::backward_params`] panic on such a tape.
//! This is the execution mode the evaluation loops and the `ntt-serve`
//! engine run on: training is one mode of the engine, not the engine
//! itself. Values still live on the tape (later ops read them) and are
//! retired into the scratch arena on [`Tape::reset`], so a serving loop
//! that resets one inference tape per request reuses the same memory
//! request after request.
//!
//! For any *given* graph, an inference tape runs the identical kernel
//! sequence as a recording tape — forward values are bit-for-bit the
//! same. Model code may however *choose* a different (cheaper) op on
//! inference tapes: multi-head attention runs [`Var::attn_fused`] there
//! instead of the classic three-op chain, which makes inference
//! forwards epsilon-close — not bit-equal — to recording forwards (see
//! [`Var::attn_fused`] for the exact contract). Inference results
//! remain bit-identical across thread counts, batch compositions, runs,
//! and resets.
//!
//! The op set is exactly what the Network Traffic Transformer needs
//! (linear algebra, attention plumbing, sequence slicing for the
//! multi-timescale aggregator, fused layer-norm, softmax and MSE). The
//! attention ops ([`Var::attn_scores`], [`Var::attn_context`],
//! [`Var::scaled_softmax_last`], and the fused [`Var::attn_fused`])
//! work directly on head-interleaved `[B, T, H, dh]` layouts so
//! multi-head attention never materializes a transpose. Each op's
//! backward rule is unit-tested against finite differences in
//! [`crate::grad_check`].

use crate::shape::{self, Broadcast};
use crate::{kernels, Param, Tensor};
use std::cell::{Cell, Ref, RefCell};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One SplitMix64 step: advances `state` and returns the next output.
/// The single mixing routine shared by the tape stream, dropout masks,
/// and the trainer's per-(step, shard) seed derivation — the
/// determinism contract depends on these never diverging.
pub fn splitmix64(state: &mut u64) -> u64 {
    let mut z = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    *state = z;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Seed sequence for tapes created without an explicit seed: a fresh
/// value per tape, so ad-hoc training loops (`Tape::new()` per step)
/// draw fresh dropout masks each step — matching the old
/// per-layer-RNG behavior — while staying deterministic for
/// single-threaded callers (creation order is the only input).
static NEXT_TAPE_SEED: AtomicU64 = AtomicU64::new(0x7a9e_5eed);

/// Retired buffers kept per length class; bounds arena growth when one
/// tape sees many distinct shapes.
const SCRATCH_BUCKET_CAP: usize = 32;

/// Per-bucket *byte* budget: a bucket stops absorbing retirements once
/// it already pools this many bytes (it always keeps at least one
/// buffer, so exact-length reuse keeps working for any shape). The
/// count cap alone let giant buffers — e.g. `[B, H, T, T]` score
/// matrices from classic-path attention at large batch — pin up to
/// 32 × their size indefinitely. Sized so it never binds at paper-scale
/// training shapes (largest recurring bucket there is ~8 MiB × a
/// handful live); only pathological one-off shapes are shed.
const SCRATCH_BUCKET_BYTE_CAP: usize = 64 << 20;

const F32_BYTES: usize = std::mem::size_of::<f32>();

/// Pool of retired `f32` buffers, bucketed by exact length. Training
/// shapes are stable step over step, so exact-length reuse hits nearly
/// always; buffers for shapes that stop occurring age out when the tape
/// is dropped. Pooled bytes are tracked, with the lifetime high-water
/// exported through the process-wide `tensor.tape_arena_bytes` gauge.
#[derive(Default)]
struct Scratch {
    pool: RefCell<BTreeMap<usize, Vec<Vec<f32>>>>,
    /// Bytes currently pooled across every bucket.
    bytes: Cell<usize>,
    /// Largest value `bytes` has reached over this arena's lifetime.
    high_water: Cell<usize>,
}

impl Scratch {
    fn on_take(&self, n: usize) {
        self.bytes.set(self.bytes.get() - n * F32_BYTES);
    }

    /// A zeroed buffer of length `n` (for accumulation targets).
    fn take_zeroed(&self, n: usize) -> Vec<f32> {
        match self.pool.borrow_mut().get_mut(&n).and_then(Vec::pop) {
            Some(mut v) => {
                self.on_take(n);
                v.fill(0.0);
                v
            }
            None => vec![0.0; n],
        }
    }

    /// A buffer of length `n` with arbitrary contents — the caller must
    /// overwrite every element before the buffer becomes visible.
    fn take_overwrite(&self, n: usize) -> Vec<f32> {
        match self.pool.borrow_mut().get_mut(&n).and_then(Vec::pop) {
            Some(v) => {
                self.on_take(n);
                v
            }
            None => vec![0.0; n],
        }
    }

    /// A buffer holding a copy of `src`.
    fn take_copy(&self, src: &[f32]) -> Vec<f32> {
        match self
            .pool
            .borrow_mut()
            .get_mut(&src.len())
            .and_then(Vec::pop)
        {
            Some(mut v) => {
                self.on_take(src.len());
                v.copy_from_slice(src);
                v
            }
            None => src.to_vec(),
        }
    }

    /// Retire a buffer for reuse. Dropped (freed, not pooled) when its
    /// bucket is full by count *or* by bytes — except that every bucket
    /// keeps at least one buffer, so steady-state reuse survives any
    /// buffer size.
    fn put(&self, v: Vec<f32>) {
        if v.is_empty() {
            return;
        }
        let len = v.len();
        let mut pool = self.pool.borrow_mut();
        let bucket = pool.entry(len).or_default();
        let within_bytes = (bucket.len() + 1) * len * F32_BYTES <= SCRATCH_BUCKET_BYTE_CAP;
        if bucket.len() < SCRATCH_BUCKET_CAP && (bucket.is_empty() || within_bytes) {
            bucket.push(v);
            let bytes = self.bytes.get() + len * F32_BYTES;
            self.bytes.set(bytes);
            if bytes > self.high_water.get() {
                self.high_water.set(bytes);
                // Process-wide high-water mark across all tapes: only
                // ratcheted upward, so concurrent arenas never regress it.
                let gauge = ntt_obs::gauge!("tensor.tape_arena_bytes");
                if bytes as f64 > gauge.get() {
                    gauge.set(bytes as f64);
                }
            }
        }
    }

    fn buffered(&self) -> usize {
        self.pool.borrow().values().map(Vec::len).sum()
    }

    /// `(buffer length, pooled count)` per bucket, ascending length.
    fn bucket_lens(&self) -> Vec<(usize, usize)> {
        let mut lens: Vec<(usize, usize)> = self
            .pool
            .borrow()
            .iter()
            .filter(|(_, b)| !b.is_empty())
            .map(|(&len, b)| (len, b.len()))
            .collect();
        lens.sort_unstable();
        lens
    }
}

/// Operation recorded on the tape. Indices refer to earlier nodes.
enum Op {
    /// Constant input — receives a gradient but propagates nowhere.
    Leaf,
    /// Trainable parameter — gradient is accumulated into the `Param`.
    ParamLeaf(Param),
    Add(usize, usize, Broadcast),
    Sub(usize, usize),
    Mul(usize, usize),
    /// Elementwise product with a constant tensor (dropout masks,
    /// feature-ablation masks): gradient flows to the variable only.
    MulConst(usize, Tensor),
    Neg(usize),
    Scale(usize, f32),
    AddScalar(usize),
    MatMul(usize, usize),
    Relu(usize),
    Gelu(usize),
    Tanh(usize),
    Softmax(usize),
    /// Fused `softmax(scale * x)` over the last axis: one kernel, one
    /// tape node, no materialized scaled scores.
    ScaledSoftmax(usize, f32),
    /// `Q·Kᵀ` per head from `[B, T, H, dh]` views (no transposes):
    /// `[B, T, H, dh] x [B, T, H, dh] -> [B, H, T, T]`.
    AttnScores {
        q: usize,
        k: usize,
    },
    /// Attention-weighted values, back in head-interleaved layout:
    /// `[B, H, T, T] x [B, T, H, dh] -> [B, T, H, dh]`.
    AttnContext {
        attn: usize,
        v: usize,
    },
    /// Fused streaming-softmax attention: `softmax(scale·Q·Kᵀ)·V` per
    /// head, `[B, T, H, dh]` in and out, never materializing the
    /// `[B, H, T, T]` scores. `stats` saves the per-row `(max, sum)`
    /// softmax statistics (`[B, H, T, 2]`) so the backward can
    /// recompute probability tiles bit-exactly.
    AttnFused {
        q: usize,
        k: usize,
        v: usize,
        scale: f32,
        stats: Vec<f32>,
    },
    LayerNorm {
        x: usize,
        gamma: usize,
        beta: usize,
        /// Normalized activations (pre gamma/beta), saved for backward.
        xhat: Tensor,
        /// Reciprocal standard deviation per row, saved for backward.
        rstd: Vec<f32>,
    },
    Reshape(usize),
    TransposeLast2(usize),
    /// Swap axes 1 and 2 of a rank-4 value (attention head regrouping).
    TransposeAxes12(usize),
    /// Rows `[start, start+len)` along axis 1 of a rank-3 tensor.
    SliceAxis1 {
        x: usize,
        start: usize,
    },
    /// Concatenate rank-3 tensors along axis 1.
    ConcatAxis1(Vec<usize>),
    /// Pick one slot along axis 1: `[B, T, D] -> [B, D]`.
    SelectAxis1 {
        x: usize,
        idx: usize,
    },
    /// Mean over axis 1: `[B, T, D] -> [B, D]`.
    MeanAxis1(usize),
    /// Concatenate rank-2 tensors along the last axis.
    ConcatLast(usize, usize),
    MeanAll(usize),
    /// Fused mean-squared-error against a constant target.
    MseLoss {
        pred: usize,
        target: Tensor,
    },
}

struct Node {
    op: Op,
    value: Tensor,
}

/// Arena of recorded operations for one forward pass.
pub struct Tape {
    nodes: RefCell<Vec<Node>>,
    /// SplitMix64 state for the tape-local RNG stream (dropout masks).
    rng: Cell<u64>,
    /// Retired-buffer pool backing every tape allocation.
    scratch: Scratch,
    /// Whether ops record backward metadata. `false` = inference mode:
    /// no graph, no backward-only tensors, `backward*` panics.
    grad: bool,
}

impl Default for Tape {
    fn default() -> Self {
        Self::new()
    }
}

/// Handle to a value on a tape.
#[derive(Clone, Copy)]
pub struct Var<'t> {
    tape: &'t Tape,
    id: usize,
}

/// Gradients of every tape node, produced by [`Tape::backward`].
pub struct Gradients {
    grads: Vec<Option<Tensor>>,
}

impl Gradients {
    /// Gradient of `v`'s node, if it participated in the loss.
    pub fn get(&self, v: Var<'_>) -> Option<&Tensor> {
        self.grads.get(v.id).and_then(|g| g.as_ref())
    }
}

/// Per-parameter gradients of one backward pass, detached from the tape.
///
/// Produced by [`Tape::backward_params`] on any thread (`Send + Sync`),
/// reduced across microbatches with [`ParamGrads::add_assign`] /
/// [`ParamGrads::reduce`], and finally consumed by an optimizer. Entries
/// are kept in a deterministic tape-derived order (reverse-walk
/// encounter order), which is identical across microbatches of the same
/// model — so a fixed-order reduction is bit-reproducible for any
/// thread count. Frozen (non-trainable) parameters are skipped, exactly
/// as [`Param::accumulate_grad`] would.
pub struct ParamGrads {
    entries: Vec<(Param, Tensor)>,
}

impl ParamGrads {
    /// Number of parameters that received a gradient.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no trainable parameter participated in the loss.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate `(param, gradient)` pairs in deterministic tape order.
    pub fn iter(&self) -> impl Iterator<Item = (&Param, &Tensor)> {
        self.entries.iter().map(|(p, g)| (p, g))
    }

    /// Gradient recorded for `p`, if any.
    pub fn get(&self, p: &Param) -> Option<&Tensor> {
        self.entries.iter().find(|(q, _)| q == p).map(|(_, g)| g)
    }

    /// Elementwise `self += rhs`. The right-hand bundle must cover the
    /// same parameters in the same order (it always does when both came
    /// from microbatches of one model); anything else is a caller bug.
    pub fn add_assign(&mut self, rhs: &ParamGrads) {
        assert_eq!(
            self.entries.len(),
            rhs.entries.len(),
            "reducing gradient bundles of different models"
        );
        for ((pa, ga), (pb, gb)) in self.entries.iter_mut().zip(rhs.entries.iter()) {
            assert!(pa == pb, "gradient bundle parameter order diverged");
            ga.add_assign(gb);
        }
    }

    /// Sum bundles in iteration order (shard-index order for the
    /// data-parallel trainer). Returns `None` for an empty iterator.
    pub fn reduce(shards: impl IntoIterator<Item = ParamGrads>) -> Option<ParamGrads> {
        let mut it = shards.into_iter();
        let mut acc = it.next()?;
        for shard in it {
            acc.add_assign(&shard);
        }
        Some(acc)
    }

    /// Scale every gradient by `c` (gradient clipping / loss weighting).
    pub fn scale(&mut self, c: f32) {
        for (_, g) in &mut self.entries {
            for v in g.data_mut() {
                *v *= c;
            }
        }
    }

    /// Global L2 norm over all entries, accumulated in f64. (Slot-based
    /// `clip_grad_norm` also sums in f64 but groups per parameter, so
    /// the two paths agree to f64 rounding, not necessarily to the last
    /// ULP on multi-parameter models.)
    pub fn global_norm(&self) -> f32 {
        let sq: f64 = self
            .entries
            .iter()
            .flat_map(|(_, g)| g.data())
            .map(|&x| (x as f64) * (x as f64))
            .sum();
        sq.sqrt() as f32
    }

    /// Deposit every gradient into its parameter's accumulator slot
    /// (the bridge back to the slot-based optimizer path).
    pub fn apply(&self) {
        for (p, g) in &self.entries {
            p.accumulate_grad(g);
        }
    }
}

/// Free list of reusable [`Tape`]s, all of one mode: a caller pops one,
/// resets it to its seed (which retires the previous run's buffers into
/// the tape's scratch arena), runs, and returns it. Across iterations
/// the same arenas are recycled, so steady-state loops — optimizer
/// steps in the trainer, requests in the serving engine — stop paying
/// allocator churn. Purely a memory optimization: the reset seed fully
/// determines the RNG stream, so results are bit-identical to fresh
/// tapes.
pub struct TapePool {
    tapes: Mutex<Vec<Tape>>,
    /// Whether pooled tapes record a backward graph.
    grad: bool,
}

impl TapePool {
    /// Pool of recording tapes (forward + backward).
    pub fn training() -> Self {
        TapePool {
            tapes: Mutex::new(Vec::new()),
            grad: true,
        }
    }

    /// Pool of grad-free tapes ([`Tape::inference`]): no graph, no grad
    /// slots, and model code may pick cheaper inference-only ops (fused
    /// attention) — see the module-level "Inference mode" section.
    pub fn inference() -> Self {
        TapePool {
            tapes: Mutex::new(Vec::new()),
            grad: false,
        }
    }

    /// Run `f` on a pooled tape reset to `seed`.
    pub fn with<R>(&self, seed: u64, f: impl FnOnce(&Tape) -> R) -> R {
        ntt_obs::counter!("tensor.tape_pool.acquires").inc();
        let mut tape = self.tapes.lock().unwrap().pop().unwrap_or_else(|| {
            // A miss means a fresh tape (and fresh arenas): the ratio of
            // misses to acquires shows how quickly a loop reaches its
            // allocation-free steady state.
            ntt_obs::counter!("tensor.tape_pool.misses").inc();
            if self.grad {
                Tape::new()
            } else {
                Tape::inference()
            }
        });
        tape.reset(seed);
        let r = f(&tape);
        self.tapes.lock().unwrap().push(tape);
        r
    }
}

const GELU_C: f32 = 0.797_884_6; // sqrt(2/pi)
const GELU_A: f32 = 0.044_715;

fn gelu_fwd(x: f32) -> f32 {
    0.5 * x * (1.0 + (GELU_C * (x + GELU_A * x * x * x)).tanh())
}

fn gelu_bwd(x: f32) -> f32 {
    let u = GELU_C * (x + GELU_A * x * x * x);
    let t = u.tanh();
    0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * GELU_C * (1.0 + 3.0 * GELU_A * x * x)
}

impl Tape {
    /// Fresh, empty tape with a process-unique RNG seed (see
    /// [`NEXT_TAPE_SEED`]). Use [`Tape::with_seed`] when the stream
    /// must be reproducible across runs and threads.
    pub fn new() -> Self {
        Self::with_seed(NEXT_TAPE_SEED.fetch_add(1, Ordering::Relaxed))
    }

    /// Fresh tape whose RNG stream starts at `seed`. The data-parallel
    /// trainer derives one seed per `(step, microbatch)` so stochastic
    /// layers are reproducible independent of thread scheduling.
    pub fn with_seed(seed: u64) -> Self {
        Tape {
            nodes: RefCell::new(Vec::new()),
            rng: Cell::new(seed),
            scratch: Scratch::default(),
            grad: true,
        }
    }

    /// Fresh **inference** tape: no backward graph, and model code may
    /// route through cheaper inference-only ops (fused attention). See
    /// the module-level "Inference mode" section for the exact value
    /// contract. The mode is a property of the tape, not of a call —
    /// `reset` keeps it, so pooled inference tapes stay inference tapes.
    pub fn inference() -> Self {
        Self::inference_with_seed(NEXT_TAPE_SEED.fetch_add(1, Ordering::Relaxed))
    }

    /// Inference tape with a reproducible RNG stream (only relevant if a
    /// stochastic layer is deliberately left in training mode, e.g.
    /// MC-dropout style uncertainty probes).
    pub fn inference_with_seed(seed: u64) -> Self {
        Tape {
            grad: false,
            ..Self::with_seed(seed)
        }
    }

    /// Whether this tape records a backward graph (`false` for tapes
    /// built with [`Tape::inference`]).
    pub fn records_grad(&self) -> bool {
        self.grad
    }

    /// Clear the recorded graph, retire every node's buffer into the
    /// scratch arena, and restart the RNG stream at `seed`. A reset tape
    /// is indistinguishable from `Tape::with_seed(seed)` except that its
    /// subsequent allocations reuse the retired memory — the trainer
    /// resets one tape per optimizer step instead of rebuilding it.
    /// Takes `&mut self` so any `Var` from before the reset (which would
    /// silently alias a new node id) is rejected at compile time.
    pub fn reset(&mut self, seed: u64) {
        let mut nodes = self.nodes.borrow_mut();
        for node in nodes.drain(..) {
            self.scratch.put(node.value.into_data());
            match node.op {
                Op::MulConst(_, mask) => self.scratch.put(mask.into_data()),
                Op::LayerNorm { xhat, .. } => self.scratch.put(xhat.into_data()),
                Op::MseLoss { target, .. } => self.scratch.put(target.into_data()),
                Op::AttnFused { stats, .. } => self.scratch.put(stats),
                _ => {}
            }
        }
        self.rng.set(seed);
    }

    /// Number of retired buffers currently pooled in the scratch arena
    /// (diagnostic; useful for asserting reuse in tests).
    pub fn scratch_buffers(&self) -> usize {
        self.scratch.buffered()
    }

    /// Bytes currently pooled in the scratch arena.
    pub fn arena_bytes(&self) -> usize {
        self.scratch.bytes.get()
    }

    /// Lifetime high-water mark of pooled arena bytes for this tape.
    /// The process-wide maximum across all tapes is exported through the
    /// `tensor.tape_arena_bytes` gauge.
    pub fn arena_high_water_bytes(&self) -> usize {
        self.scratch.high_water.get()
    }

    /// `(buffer length, pooled count)` per arena bucket, ascending
    /// length. After a [`Tape::reset`], every buffer the previous run
    /// allocated through the tape shows up here — which lets tests
    /// assert that a code path never allocated a given shape (e.g. that
    /// the fused attention path retired no `[B, H, T, T]` score buffer).
    pub fn arena_bucket_lens(&self) -> Vec<(usize, usize)> {
        self.scratch.bucket_lens()
    }

    /// Next value of the tape-local SplitMix64 stream. Deterministic in
    /// the seed and the sequence of calls (tapes are single-threaded).
    pub fn rng_next(&self) -> u64 {
        let mut state = self.rng.get();
        let z = splitmix64(&mut state);
        self.rng.set(state);
        z
    }

    /// Number of recorded nodes (diagnostic).
    pub fn len(&self) -> usize {
        self.nodes.borrow().len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    // -- arena-backed allocation helpers -----------------------------------

    fn alloc_zeroed(&self, n: usize) -> Vec<f32> {
        self.scratch.take_zeroed(n)
    }

    /// Buffer with arbitrary contents; every element must be written.
    fn alloc_overwrite(&self, n: usize) -> Vec<f32> {
        self.scratch.take_overwrite(n)
    }

    fn recycle(&self, t: Tensor) {
        self.scratch.put(t.into_data());
    }

    /// Pooled copy of a tensor (optionally under a new shape).
    fn t_copy(&self, src: &Tensor, shape: &[usize]) -> Tensor {
        Tensor::from_vec(self.scratch.take_copy(src.data()), shape)
    }

    /// Pooled elementwise map.
    fn t_map(&self, src: &Tensor, f: impl Fn(f32) -> f32) -> Tensor {
        let mut buf = self.alloc_overwrite(src.numel());
        for (o, &x) in buf.iter_mut().zip(src.data().iter()) {
            *o = f(x);
        }
        Tensor::from_vec(buf, src.shape())
    }

    /// Pooled elementwise combine (identical shapes).
    fn t_zip(&self, a: &Tensor, b: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(
            a.shape(),
            b.shape(),
            "zip requires identical shapes ({:?} vs {:?})",
            a.shape(),
            b.shape()
        );
        let mut buf = self.alloc_overwrite(a.numel());
        for ((o, &x), &y) in buf.iter_mut().zip(a.data().iter()).zip(b.data().iter()) {
            *o = f(x, y);
        }
        Tensor::from_vec(buf, a.shape())
    }

    fn push(&self, op: Op, value: Tensor) -> Var<'_> {
        let op = if self.grad { op } else { self.strip(op) };
        let mut nodes = self.nodes.borrow_mut();
        nodes.push(Node { op, value });
        Var {
            tape: self,
            id: nodes.len() - 1,
        }
    }

    /// Inference-mode degradation: the node keeps its value (later ops
    /// read it by id) but every op becomes a `Leaf`, and any tensor that
    /// existed only for backward is retired straight into the arena.
    /// The hot paths (`layer_norm`, `mul_const`, `mse_loss`) skip
    /// building those tensors in the first place; this is the catch-all.
    fn strip(&self, op: Op) -> Op {
        match op {
            Op::MulConst(_, saved) => self.recycle(saved),
            Op::LayerNorm { xhat, .. } => self.recycle(xhat),
            Op::MseLoss { target, .. } => self.recycle(target),
            Op::AttnFused { stats, .. } => self.scratch.put(stats),
            _ => {}
        }
        Op::Leaf
    }

    fn val(&self, id: usize) -> Ref<'_, Tensor> {
        Ref::map(self.nodes.borrow(), |n| &n[id].value)
    }

    /// Record a constant input.
    pub fn input(&self, value: Tensor) -> Var<'_> {
        self.push(Op::Leaf, value)
    }

    /// Record a constant input from a borrow, staging an arena-pooled
    /// copy (same bits as [`Tape::input`] of a clone, without the fresh
    /// heap allocation once the arena is warm). The per-request entry
    /// point for serving loops that keep ownership of their batch.
    pub fn input_copy(&self, value: &Tensor) -> Var<'_> {
        let staged = self.t_copy(value, value.shape());
        self.push(Op::Leaf, staged)
    }

    /// Record a trainable parameter. The tape's node holds a pooled
    /// *copy* of the value (one memcpy; the buffer comes back from the
    /// arena after a reset), so concurrent forward passes never contend
    /// on the parameter lock beyond this read.
    pub fn param(&self, p: &Param) -> Var<'_> {
        let value = p.with_value(|t| self.t_copy(t, t.shape()));
        self.push(Op::ParamLeaf(p.clone()), value)
    }

    /// Run reverse-mode differentiation from `loss` (any shape; the seed
    /// gradient is all-ones) and deposit parameter gradients directly
    /// into the `Param` accumulator slots (no intermediate bundle — the
    /// zero-allocation single-threaded path).
    pub fn backward(&self, loss: Var<'_>) -> Gradients {
        self.backward_walk(
            loss,
            &mut |p: &Param, g: &Tensor| p.accumulate_grad(g),
            false,
        )
    }

    /// Run reverse-mode differentiation and *collect* per-parameter
    /// gradients into a detached [`ParamGrads`] bundle, leaving every
    /// `Param` untouched. This is the worker-thread half of the
    /// data-parallel trainer: each microbatch produces one bundle, and
    /// the coordinator reduces them in shard-index order. Intermediate
    /// gradients are retired into the scratch arena as soon as their
    /// node is processed, so the walk mostly reuses its own memory.
    pub fn backward_params(&self, loss: Var<'_>) -> ParamGrads {
        let mut collected = ParamGrads {
            entries: Vec::new(),
        };
        // Param identity -> entry index, for parameters recorded on the
        // tape more than once (e.g. a layer applied at two places).
        let mut slot_of: BTreeMap<usize, usize> = BTreeMap::new();
        self.backward_walk(
            loss,
            &mut |p: &Param, g: &Tensor| {
                if p.is_trainable() {
                    match slot_of.get(&p.key()) {
                        Some(&i) => collected.entries[i].1.add_assign(g),
                        None => {
                            slot_of.insert(p.key(), collected.entries.len());
                            collected.entries.push((p.clone(), g.clone()));
                        }
                    }
                }
            },
            true,
        );
        collected
    }

    /// The shared reverse walk; `on_param` receives each parameter
    /// node's gradient (deposit it or collect it). With `recycle`, each
    /// node's gradient buffer is retired to the arena once processed
    /// (the returned [`Gradients`] is then empty of intermediates).
    fn backward_walk(
        &self,
        loss: Var<'_>,
        on_param: &mut dyn FnMut(&Param, &Tensor),
        recycle: bool,
    ) -> Gradients {
        assert!(
            self.grad,
            "backward on an inference tape: it recorded no graph \
             (build the tape with Tape::new()/with_seed() to train)"
        );
        let nodes = self.nodes.borrow();
        let mut grads: Vec<Option<Tensor>> = vec![None; nodes.len()];
        grads[loss.id] = Some(Tensor::ones(nodes[loss.id].value.shape()));

        for id in (0..=loss.id).rev() {
            let Some(g) = grads[id].take() else { continue };
            self.step_backward(&nodes, &mut grads, on_param, id, &g);
            if recycle {
                self.recycle(g);
            } else {
                grads[id] = Some(g);
            }
        }
        Gradients { grads }
    }

    fn step_backward(
        &self,
        nodes: &[Node],
        grads: &mut [Option<Tensor>],
        on_param: &mut dyn FnMut(&Param, &Tensor),
        id: usize,
        g: &Tensor,
    ) {
        // Accumulate `inc` into a node's gradient slot; when the slot is
        // already live the increment's buffer is retired to the arena.
        let add_grad = |grads: &mut [Option<Tensor>], to: usize, inc: Tensor| match &mut grads[to] {
            Some(acc) => {
                acc.add_assign(&inc);
                self.recycle(inc);
            }
            slot @ None => *slot = Some(inc),
        };
        match &nodes[id].op {
            Op::Leaf => {}
            Op::ParamLeaf(p) => on_param(p, g),
            Op::Add(a, b, bc) => {
                add_grad(grads, *a, self.t_copy(g, g.shape()));
                let gb = match bc {
                    Broadcast::Same => self.t_copy(g, g.shape()),
                    Broadcast::Leading | Broadcast::Inner => {
                        let bshape = nodes[*b].value.shape().to_vec();
                        let bn = shape::numel(&bshape);
                        let mut acc = self.alloc_zeroed(bn);
                        for chunk in g.data().chunks(bn) {
                            for (a, &x) in acc.iter_mut().zip(chunk.iter()) {
                                *a += x;
                            }
                        }
                        Tensor::from_vec(acc, &bshape)
                    }
                };
                add_grad(grads, *b, gb);
            }
            Op::Sub(a, b) => {
                add_grad(grads, *a, self.t_copy(g, g.shape()));
                add_grad(grads, *b, self.t_map(g, |x| -x));
            }
            Op::Mul(a, b) => {
                let (va, vb) = (&nodes[*a].value, &nodes[*b].value);
                let ga = self.t_zip(g, vb, |g, b| g * b);
                let gb = self.t_zip(g, va, |g, a| g * a);
                add_grad(grads, *a, ga);
                add_grad(grads, *b, gb);
            }
            Op::MulConst(a, c) => add_grad(grads, *a, self.t_zip(g, c, |g, c| g * c)),
            Op::Neg(a) => add_grad(grads, *a, self.t_map(g, |x| -x)),
            Op::Scale(a, c) => {
                let c = *c;
                add_grad(grads, *a, self.t_map(g, |x| x * c));
            }
            Op::AddScalar(a) => add_grad(grads, *a, self.t_copy(g, g.shape())),
            Op::MatMul(a, b) => {
                let va = &nodes[*a].value;
                let vb = &nodes[*b].value;
                let (batch, m, k) = shape::as_batched_matrix(va.shape());
                let n = *vb.shape().last().unwrap();
                // dA = G · Bᵀ ; dB = Aᵀ · G.
                let mut ga = self.alloc_zeroed(va.numel());
                let mut gb = self.alloc_zeroed(vb.numel());
                if vb.rank() == 2 {
                    // Broadcast right operand: both gradients are single
                    // flat GEMMs over the merged leading axes (dB sums
                    // the batch contributions in ascending row order).
                    kernels::gemm_nt(g.data(), vb.data(), &mut ga, batch * m, n, k);
                    kernels::gemm_tn(va.data(), g.data(), &mut gb, k, batch * m, n);
                } else {
                    for bi in 0..batch {
                        let gs = &g.data()[bi * m * n..(bi + 1) * m * n];
                        let asl = &va.data()[bi * m * k..(bi + 1) * m * k];
                        let bsl = &vb.data()[bi * k * n..(bi + 1) * k * n];
                        kernels::gemm_nt(gs, bsl, &mut ga[bi * m * k..(bi + 1) * m * k], m, n, k);
                        kernels::gemm_tn(asl, gs, &mut gb[bi * k * n..(bi + 1) * k * n], k, m, n);
                    }
                }
                add_grad(grads, *a, Tensor::from_vec(ga, va.shape()));
                add_grad(grads, *b, Tensor::from_vec(gb, vb.shape()));
            }
            Op::Relu(a) => {
                let va = &nodes[*a].value;
                add_grad(
                    grads,
                    *a,
                    self.t_zip(g, va, |g, x| if x > 0.0 { g } else { 0.0 }),
                );
            }
            Op::Gelu(a) => {
                let va = &nodes[*a].value;
                add_grad(grads, *a, self.t_zip(g, va, |g, x| g * gelu_bwd(x)));
            }
            Op::Tanh(a) => {
                let y = &nodes[id].value;
                add_grad(grads, *a, self.t_zip(g, y, |g, y| g * (1.0 - y * y)));
            }
            Op::Softmax(a) | Op::ScaledSoftmax(a, _) => {
                let scale = match &nodes[id].op {
                    Op::ScaledSoftmax(_, c) => *c,
                    _ => 1.0,
                };
                let y = &nodes[id].value;
                let d = *y.shape().last().unwrap();
                let mut gx = self.alloc_overwrite(y.numel());
                kernels::softmax_bwd(y.data(), g.data(), scale, d, &mut gx);
                add_grad(grads, *a, Tensor::from_vec(gx, y.shape()));
            }
            Op::AttnScores { q, k } => {
                let vq = &nodes[*q].value;
                let vk = &nodes[*k].value;
                let s = vq.shape();
                let (b, t, h, dh) = (s[0], s[1], s[2], s[3]);
                // dQ = G · K ; dK = Gᵀ · Q, all in [B, T, H, dh] layout.
                let mut gq = self.alloc_zeroed(vq.numel());
                kernels::attn_context(g.data(), vk.data(), &mut gq, b, t, h, dh);
                let mut gk = self.alloc_zeroed(vk.numel());
                kernels::attn_context_t(g.data(), vq.data(), &mut gk, b, t, h, dh);
                add_grad(grads, *q, Tensor::from_vec(gq, s));
                add_grad(grads, *k, Tensor::from_vec(gk, s));
            }
            Op::AttnContext { attn, v } => {
                let vw = &nodes[*attn].value;
                let vv = &nodes[*v].value;
                let s = vv.shape();
                let (b, t, h, dh) = (s[0], s[1], s[2], s[3]);
                // dW[b,h,i,j] = Σ_d g[b,i,h,d]·v[b,j,h,d]  (a scores product);
                // dV = Wᵀ · G.
                let mut gw = self.alloc_zeroed(vw.numel());
                kernels::attn_scores(g.data(), vv.data(), &mut gw, b, t, h, dh);
                let mut gv = self.alloc_zeroed(vv.numel());
                kernels::attn_context_t(vw.data(), g.data(), &mut gv, b, t, h, dh);
                add_grad(grads, *attn, Tensor::from_vec(gw, vw.shape()));
                add_grad(grads, *v, Tensor::from_vec(gv, s));
            }
            Op::AttnFused {
                q,
                k,
                v,
                scale,
                stats,
            } => {
                let vq = &nodes[*q].value;
                let vk = &nodes[*k].value;
                let vv = &nodes[*v].value;
                let o = &nodes[id].value;
                let s = vq.shape();
                let (b, t, h, dh) = (s[0], s[1], s[2], s[3]);
                // One pass recomputes score tiles from the saved stats
                // and accumulates all three gradients — still nothing
                // [B, H, T, T]-sized.
                let mut gq = self.alloc_zeroed(vq.numel());
                let mut gk = self.alloc_zeroed(vk.numel());
                let mut gv = self.alloc_zeroed(vv.numel());
                kernels::attn_fused_bwd(
                    vq.data(),
                    vk.data(),
                    vv.data(),
                    g.data(),
                    o.data(),
                    stats,
                    *scale,
                    &mut gq,
                    &mut gk,
                    &mut gv,
                    b,
                    t,
                    h,
                    dh,
                );
                add_grad(grads, *q, Tensor::from_vec(gq, s));
                add_grad(grads, *k, Tensor::from_vec(gk, s));
                add_grad(grads, *v, Tensor::from_vec(gv, s));
            }
            Op::LayerNorm {
                x,
                gamma,
                beta,
                xhat,
                rstd,
            } => {
                let d = *xhat.shape().last().unwrap();
                let vgamma = &nodes[*gamma].value;
                let mut gx = self.alloc_overwrite(xhat.numel());
                let mut ggamma = self.alloc_zeroed(d);
                let mut gbeta = self.alloc_zeroed(d);
                for (row, (xh, gs)) in xhat.data().chunks(d).zip(g.data().chunks(d)).enumerate() {
                    let mut mean_gxh = 0.0f32;
                    let mut mean_gxh_xh = 0.0f32;
                    for j in 0..d {
                        let gxh = gs[j] * vgamma.data()[j];
                        mean_gxh += gxh;
                        mean_gxh_xh += gxh * xh[j];
                        ggamma[j] += gs[j] * xh[j];
                        gbeta[j] += gs[j];
                    }
                    mean_gxh /= d as f32;
                    mean_gxh_xh /= d as f32;
                    for j in 0..d {
                        let gxh = gs[j] * vgamma.data()[j];
                        gx[row * d + j] = rstd[row] * (gxh - mean_gxh - xh[j] * mean_gxh_xh);
                    }
                }
                add_grad(grads, *x, Tensor::from_vec(gx, xhat.shape()));
                add_grad(grads, *gamma, Tensor::from_vec(ggamma, &[d]));
                add_grad(grads, *beta, Tensor::from_vec(gbeta, &[d]));
            }
            Op::Reshape(a) => {
                let ashape = nodes[*a].value.shape().to_vec();
                add_grad(grads, *a, self.t_copy(g, &ashape));
            }
            Op::TransposeLast2(a) => add_grad(grads, *a, g.transpose_last2()),
            Op::TransposeAxes12(a) => add_grad(grads, *a, g.transpose_axes_1_2()),
            Op::SliceAxis1 { x, start } => {
                let xs = nodes[*x].value.shape().to_vec();
                let (b, t, d) = (xs[0], xs[1], xs[2]);
                let len = g.shape()[1];
                let mut gx = self.alloc_zeroed(b * t * d);
                for bi in 0..b {
                    let dst = bi * t * d + start * d;
                    let src = bi * len * d;
                    gx[dst..dst + len * d].copy_from_slice(&g.data()[src..src + len * d]);
                }
                add_grad(grads, *x, Tensor::from_vec(gx, &xs));
            }
            Op::ConcatAxis1(parts) => {
                let mut start = 0usize;
                let out_t = nodes[id].value.shape()[1];
                let (b, d) = (nodes[id].value.shape()[0], nodes[id].value.shape()[2]);
                for &p in parts {
                    let len = nodes[p].value.shape()[1];
                    let mut gp = self.alloc_overwrite(b * len * d);
                    for bi in 0..b {
                        let base = bi * out_t * d + start * d;
                        gp[bi * len * d..(bi + 1) * len * d]
                            .copy_from_slice(&g.data()[base..base + len * d]);
                    }
                    add_grad(grads, p, Tensor::from_vec(gp, &[b, len, d]));
                    start += len;
                }
            }
            Op::SelectAxis1 { x, idx } => {
                let xs = nodes[*x].value.shape().to_vec();
                let (b, t, d) = (xs[0], xs[1], xs[2]);
                let mut gx = self.alloc_zeroed(b * t * d);
                for bi in 0..b {
                    let dst = bi * t * d + idx * d;
                    gx[dst..dst + d].copy_from_slice(&g.data()[bi * d..(bi + 1) * d]);
                }
                add_grad(grads, *x, Tensor::from_vec(gx, &xs));
            }
            Op::MeanAxis1(a) => {
                let xs = nodes[*a].value.shape().to_vec();
                let (b, t, d) = (xs[0], xs[1], xs[2]);
                let inv = 1.0 / t as f32;
                let mut gx = self.alloc_overwrite(b * t * d);
                for bi in 0..b {
                    for ti in 0..t {
                        for j in 0..d {
                            gx[bi * t * d + ti * d + j] = g.data()[bi * d + j] * inv;
                        }
                    }
                }
                add_grad(grads, *a, Tensor::from_vec(gx, &xs));
            }
            Op::ConcatLast(a, b) => {
                let da = *nodes[*a].value.shape().last().unwrap();
                let db = *nodes[*b].value.shape().last().unwrap();
                let rows = nodes[id].value.numel() / (da + db);
                let mut ga = self.alloc_overwrite(rows * da);
                let mut gb = self.alloc_overwrite(rows * db);
                for r in 0..rows {
                    let base = r * (da + db);
                    ga[r * da..(r + 1) * da].copy_from_slice(&g.data()[base..base + da]);
                    gb[r * db..(r + 1) * db].copy_from_slice(&g.data()[base + da..base + da + db]);
                }
                add_grad(grads, *a, Tensor::from_vec(ga, nodes[*a].value.shape()));
                add_grad(grads, *b, Tensor::from_vec(gb, nodes[*b].value.shape()));
            }
            Op::MeanAll(a) => {
                let va = &nodes[*a].value;
                let c = g.item() / va.numel() as f32;
                let mut gx = self.alloc_overwrite(va.numel());
                gx.fill(c);
                add_grad(grads, *a, Tensor::from_vec(gx, va.shape()));
            }
            Op::MseLoss { pred, target } => {
                let vp = &nodes[*pred].value;
                let c = 2.0 * g.item() / vp.numel() as f32;
                add_grad(grads, *pred, self.t_zip(vp, target, |p, t| c * (p - t)));
            }
        }
    }
}

#[allow(clippy::should_implement_trait)] // add/sub/mul/neg mirror the op names on a by-value Var, deliberately
impl<'t> Var<'t> {
    /// The tape this variable lives on (e.g. for drawing from the
    /// tape-local RNG stream in stochastic layers).
    pub fn tape(&self) -> &'t Tape {
        self.tape
    }

    /// Clone of this node's value.
    pub fn value(&self) -> Tensor {
        self.tape.val(self.id).clone()
    }

    /// Shape of this node's value.
    pub fn shape(&self) -> Vec<usize> {
        self.tape.val(self.id).shape().to_vec()
    }

    /// Elementwise/broadcast addition (see [`shape::broadcast_kind`] for
    /// the accepted broadcast forms of `rhs`).
    pub fn add(self, rhs: Var<'t>) -> Var<'t> {
        let (out, bc) = {
            let va = self.tape.val(self.id);
            let vb = self.tape.val(rhs.id);
            let bc = shape::broadcast_kind(va.shape(), vb.shape())
                .unwrap_or_else(|| panic!("add: incompatible {:?} + {:?}", va.shape(), vb.shape()));
            let out = match bc {
                Broadcast::Same => self.tape.t_zip(&va, &vb, |a, b| a + b),
                Broadcast::Leading | Broadcast::Inner => {
                    // Single fused pass (no copy-then-accumulate).
                    let bn = vb.numel();
                    let mut out = self.tape.alloc_overwrite(va.numel());
                    for (ochunk, achunk) in out.chunks_mut(bn).zip(va.data().chunks(bn)) {
                        for ((o, &a), &b) in
                            ochunk.iter_mut().zip(achunk.iter()).zip(vb.data().iter())
                        {
                            *o = a + b;
                        }
                    }
                    Tensor::from_vec(out, va.shape())
                }
            };
            (out, bc)
        };
        self.tape.push(Op::Add(self.id, rhs.id, bc), out)
    }

    /// Elementwise subtraction (identical shapes).
    pub fn sub(self, rhs: Var<'t>) -> Var<'t> {
        let out = {
            let (va, vb) = (self.tape.val(self.id), self.tape.val(rhs.id));
            self.tape.t_zip(&va, &vb, |a, b| a - b)
        };
        self.tape.push(Op::Sub(self.id, rhs.id), out)
    }

    /// Elementwise product (identical shapes).
    pub fn mul(self, rhs: Var<'t>) -> Var<'t> {
        let out = {
            let (va, vb) = (self.tape.val(self.id), self.tape.val(rhs.id));
            self.tape.t_zip(&va, &vb, |a, b| a * b)
        };
        self.tape.push(Op::Mul(self.id, rhs.id), out)
    }

    /// Elementwise product with a constant tensor (no gradient to it).
    pub fn mul_const(self, mask: &Tensor) -> Var<'t> {
        let out = {
            let va = self.tape.val(self.id);
            self.tape.t_zip(&va, mask, |a, b| a * b)
        };
        if !self.tape.grad {
            return self.tape.push(Op::Leaf, out);
        }
        let saved = self.tape.t_copy(mask, mask.shape());
        self.tape.push(Op::MulConst(self.id, saved), out)
    }

    /// Negation.
    pub fn neg(self) -> Var<'t> {
        let out = {
            let va = self.tape.val(self.id);
            self.tape.t_map(&va, |x| -x)
        };
        self.tape.push(Op::Neg(self.id), out)
    }

    /// Multiply by a scalar constant.
    pub fn scale(self, c: f32) -> Var<'t> {
        let out = {
            let va = self.tape.val(self.id);
            self.tape.t_map(&va, |x| x * c)
        };
        self.tape.push(Op::Scale(self.id, c), out)
    }

    /// Add a scalar constant.
    pub fn add_scalar(self, c: f32) -> Var<'t> {
        let out = {
            let va = self.tape.val(self.id);
            self.tape.t_map(&va, |x| x + c)
        };
        self.tape.push(Op::AddScalar(self.id), out)
    }

    /// Matrix product. Operands are stacks of matrices: rank-2 tensors
    /// multiply plainly; equal leading dimensions multiply batch-wise.
    /// A rank-2 right operand against a higher-rank left operand is
    /// *broadcast*: every batch row multiplies the same matrix, fused
    /// into one flat GEMM over all leading axes — the layer-application
    /// case (`[B, T, K] · [K, N] -> [B, T, N]`) with no reshape copies.
    pub fn matmul(self, rhs: Var<'t>) -> Var<'t> {
        let (out, oshape) = {
            let va = self.tape.val(self.id);
            let vb = self.tape.val(rhs.id);
            let (ba, m, k) = shape::as_batched_matrix(va.shape());
            let (bb, k2, n) = shape::as_batched_matrix(vb.shape());
            assert_eq!(
                k,
                k2,
                "matmul inner dims: {:?} x {:?}",
                va.shape(),
                vb.shape()
            );
            let mut oshape = va.shape()[..va.rank() - 2].to_vec();
            oshape.push(m);
            oshape.push(n);
            let mut out = self.tape.alloc_zeroed(ba * m * n);
            if vb.rank() == 2 {
                // Broadcast: one flat [ba*m, k] · [k, n] product.
                kernels::gemm_nn(va.data(), vb.data(), &mut out, ba * m, k, n);
            } else {
                assert_eq!(
                    ba,
                    bb,
                    "matmul batch dims: {:?} x {:?}",
                    va.shape(),
                    vb.shape()
                );
                assert_eq!(
                    va.shape()[..va.rank() - 2],
                    vb.shape()[..vb.rank() - 2],
                    "matmul leading dims must match elementwise"
                );
                for bi in 0..ba {
                    kernels::gemm_nn(
                        &va.data()[bi * m * k..(bi + 1) * m * k],
                        &vb.data()[bi * k * n..(bi + 1) * k * n],
                        &mut out[bi * m * n..(bi + 1) * m * n],
                        m,
                        k,
                        n,
                    );
                }
            }
            (out, oshape)
        };
        self.tape
            .push(Op::MatMul(self.id, rhs.id), Tensor::from_vec(out, &oshape))
    }

    /// Rectified linear unit.
    pub fn relu(self) -> Var<'t> {
        let out = {
            let va = self.tape.val(self.id);
            self.tape.t_map(&va, |x| x.max(0.0))
        };
        self.tape.push(Op::Relu(self.id), out)
    }

    /// GELU activation (tanh approximation, as in BERT/ViT).
    pub fn gelu(self) -> Var<'t> {
        let out = {
            let va = self.tape.val(self.id);
            self.tape.t_map(&va, gelu_fwd)
        };
        self.tape.push(Op::Gelu(self.id), out)
    }

    /// Hyperbolic tangent.
    pub fn tanh(self) -> Var<'t> {
        let out = {
            let va = self.tape.val(self.id);
            self.tape.t_map(&va, f32::tanh)
        };
        self.tape.push(Op::Tanh(self.id), out)
    }

    /// Softmax over the last axis (numerically stabilized).
    pub fn softmax_last(self) -> Var<'t> {
        let out = {
            let va = self.tape.val(self.id);
            let d = *va.shape().last().expect("softmax requires rank >= 1");
            let mut buf = self.tape.alloc_overwrite(va.numel());
            kernels::scaled_softmax_fwd(va.data(), 1.0, d, &mut buf);
            Tensor::from_vec(buf, va.shape())
        };
        self.tape.push(Op::Softmax(self.id), out)
    }

    /// Fused `softmax(c * x)` over the last axis (numerically
    /// stabilized): one kernel and one tape node instead of a
    /// materialized `scale` followed by `softmax_last`. This is the
    /// attention-score nonlinearity (`c = 1/√dh`).
    pub fn scaled_softmax_last(self, c: f32) -> Var<'t> {
        let out = {
            let va = self.tape.val(self.id);
            let d = *va.shape().last().expect("softmax requires rank >= 1");
            let mut buf = self.tape.alloc_overwrite(va.numel());
            kernels::scaled_softmax_fwd(va.data(), c, d, &mut buf);
            Tensor::from_vec(buf, va.shape())
        };
        self.tape.push(Op::ScaledSoftmax(self.id, c), out)
    }

    /// Per-head attention scores `Q·Kᵀ` computed directly from
    /// head-interleaved layouts: `self` and `k` are `[B, T, H, dh]`
    /// (the natural reshape of a projection output — no transpose), the
    /// result is `[B, H, T, T]`.
    pub fn attn_scores(self, k: Var<'t>) -> Var<'t> {
        let (out, oshape) = {
            let vq = self.tape.val(self.id);
            let vk = self.tape.val(k.id);
            assert_eq!(vq.rank(), 4, "attn_scores expects [B, T, H, dh]");
            assert_eq!(
                vq.shape(),
                vk.shape(),
                "attn_scores operands must agree: {:?} vs {:?}",
                vq.shape(),
                vk.shape()
            );
            let s = vq.shape();
            let (b, t, h, dh) = (s[0], s[1], s[2], s[3]);
            let mut out = self.tape.alloc_zeroed(b * h * t * t);
            kernels::attn_scores(vq.data(), vk.data(), &mut out, b, t, h, dh);
            (out, vec![b, h, t, t])
        };
        self.tape.push(
            Op::AttnScores {
                q: self.id,
                k: k.id,
            },
            Tensor::from_vec(out, &oshape),
        )
    }

    /// Attention-weighted values: `self` is `[B, H, T, T]` attention
    /// weights, `v` is `[B, T, H, dh]` values; the result comes back in
    /// `[B, T, H, dh]` layout, so merging heads is a plain reshape.
    pub fn attn_context(self, v: Var<'t>) -> Var<'t> {
        let out = {
            let vw = self.tape.val(self.id);
            let vv = self.tape.val(v.id);
            assert_eq!(vw.rank(), 4, "attn_context expects [B, H, T, T] weights");
            assert_eq!(vv.rank(), 4, "attn_context expects [B, T, H, dh] values");
            let (b, h, t, t2) = (vw.shape()[0], vw.shape()[1], vw.shape()[2], vw.shape()[3]);
            let dh = vv.shape()[3];
            assert_eq!(t, t2, "attention weights must be square per head");
            assert_eq!(
                (vv.shape()[0], vv.shape()[1], vv.shape()[2]),
                (b, t, h),
                "attn_context values {:?} incompatible with weights {:?}",
                vv.shape(),
                vw.shape()
            );
            let mut out = self.tape.alloc_zeroed(b * t * h * dh);
            kernels::attn_context(vw.data(), vv.data(), &mut out, b, t, h, dh);
            Tensor::from_vec(out, &[b, t, h, dh])
        };
        self.tape.push(
            Op::AttnContext {
                attn: self.id,
                v: v.id,
            },
            out,
        )
    }

    /// Fused streaming-softmax attention (flash-attention style):
    /// `softmax(scale · Q·Kᵀ) · V` per head, where `self`, `k`, and `v`
    /// are all `[B, T, H, dh]` and the result comes back in the same
    /// layout. Unlike the `attn_scores → scaled_softmax_last →
    /// attn_context` chain this never materializes the `[B, H, T, T]`
    /// score matrix — on recording tapes it saves only the `[B, H, T, 2]`
    /// per-row softmax stats, and on inference tapes nothing at all.
    ///
    /// Values are bit-identical across thread counts, batch
    /// compositions, and runs, but only epsilon-close to the classic
    /// chain: the online softmax evaluates the same math in a different
    /// IEEE order (running max with rescaled partial sums instead of a
    /// two-pass max-then-sum), so exact bit-equality with the unfused
    /// path is deliberately not claimed.
    pub fn attn_fused(self, k: Var<'t>, v: Var<'t>, scale: f32) -> Var<'t> {
        let (out, stats) = {
            let vq = self.tape.val(self.id);
            let vk = self.tape.val(k.id);
            let vv = self.tape.val(v.id);
            assert_eq!(vq.rank(), 4, "attn_fused expects [B, T, H, dh]");
            assert_eq!(
                vq.shape(),
                vk.shape(),
                "attn_fused operands must agree: {:?} vs {:?}",
                vq.shape(),
                vk.shape()
            );
            assert_eq!(
                vq.shape(),
                vv.shape(),
                "attn_fused operands must agree: {:?} vs {:?}",
                vq.shape(),
                vv.shape()
            );
            let s = vq.shape();
            let (b, t, h, dh) = (s[0], s[1], s[2], s[3]);
            let mut out = self.tape.alloc_overwrite(b * t * h * dh);
            // Inference tapes skip the stats entirely: the fused
            // forward is then allocation-free beyond the output itself.
            let mut stats = self.tape.grad.then(|| {
                self.tape
                    .alloc_overwrite(b * h * t * kernels::FUSED_STATS_PER_ROW)
            });
            kernels::attn_fused_fwd(
                vq.data(),
                vk.data(),
                vv.data(),
                scale,
                &mut out,
                stats.as_deref_mut(),
                b,
                t,
                h,
                dh,
            );
            (Tensor::from_vec(out, s), stats)
        };
        match stats {
            Some(stats) => self.tape.push(
                Op::AttnFused {
                    q: self.id,
                    k: k.id,
                    v: v.id,
                    scale,
                    stats,
                },
                out,
            ),
            None => self.tape.push(Op::Leaf, out),
        }
    }

    /// Fused layer normalization over the last axis with affine
    /// parameters `gamma`, `beta` (both shape `[D]`).
    pub fn layer_norm(self, gamma: Var<'t>, beta: Var<'t>, eps: f32) -> Var<'t> {
        if !self.tape.grad {
            // Same arithmetic per element (`xh * gamma + beta` with the
            // identical `xh` expression), but `xhat`/`rstd` — which exist
            // only for backward — are never materialized.
            let out = {
                let x = self.tape.val(self.id);
                let d = *x.shape().last().expect("layer_norm requires rank >= 1");
                let vg = self.tape.val(gamma.id);
                let vb = self.tape.val(beta.id);
                assert_eq!(vg.shape(), &[d], "gamma must be [D]");
                assert_eq!(vb.shape(), &[d], "beta must be [D]");
                let mut out = self.tape.alloc_overwrite(x.numel());
                for (r, row) in x.data().chunks(d).enumerate() {
                    let mean = row.iter().sum::<f32>() / d as f32;
                    let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
                    let rs = 1.0 / (var + eps).sqrt();
                    for j in 0..d {
                        let xh = (row[j] - mean) * rs;
                        out[r * d + j] = xh * vg.data()[j] + vb.data()[j];
                    }
                }
                Tensor::from_vec(out, x.shape())
            };
            return self.tape.push(Op::Leaf, out);
        }
        let (xhat, rstd, out, xshape) = {
            let x = self.tape.val(self.id);
            let d = *x.shape().last().expect("layer_norm requires rank >= 1");
            let vg = self.tape.val(gamma.id);
            let vb = self.tape.val(beta.id);
            assert_eq!(vg.shape(), &[d], "gamma must be [D]");
            assert_eq!(vb.shape(), &[d], "beta must be [D]");
            let rows = x.numel() / d;
            let mut xhat = self.tape.alloc_overwrite(x.numel());
            let mut rstd = vec![0.0f32; rows];
            let mut out = self.tape.alloc_overwrite(x.numel());
            for (r, row) in x.data().chunks(d).enumerate() {
                let mean = row.iter().sum::<f32>() / d as f32;
                let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
                let rs = 1.0 / (var + eps).sqrt();
                rstd[r] = rs;
                for j in 0..d {
                    let xh = (row[j] - mean) * rs;
                    xhat[r * d + j] = xh;
                    out[r * d + j] = xh * vg.data()[j] + vb.data()[j];
                }
            }
            (xhat, rstd, out, x.shape().to_vec())
        };
        self.tape.push(
            Op::LayerNorm {
                x: self.id,
                gamma: gamma.id,
                beta: beta.id,
                xhat: Tensor::from_vec(xhat, &xshape),
                rstd,
            },
            Tensor::from_vec(out, &xshape),
        )
    }

    /// Same data, new shape.
    pub fn reshape(self, new_shape: &[usize]) -> Var<'t> {
        let out = {
            let va = self.tape.val(self.id);
            shape::check_reshape(va.shape(), new_shape);
            self.tape.t_copy(&va, new_shape)
        };
        self.tape.push(Op::Reshape(self.id), out)
    }

    /// Swap the last two axes (batched matrix transpose).
    pub fn transpose_last2(self) -> Var<'t> {
        let out = self.tape.val(self.id).transpose_last2();
        self.tape.push(Op::TransposeLast2(self.id), out)
    }

    /// Swap axes 1 and 2 of a rank-4 value: `[A, B, C, D] -> [A, C, B, D]`.
    pub fn transpose_axes_1_2(self) -> Var<'t> {
        let out = self.tape.val(self.id).transpose_axes_1_2();
        self.tape.push(Op::TransposeAxes12(self.id), out)
    }

    /// Rows `[start, start+len)` along axis 1 of a rank-3 value.
    pub fn slice_axis1(self, start: usize, len: usize) -> Var<'t> {
        let out = {
            let x = self.tape.val(self.id);
            assert_eq!(x.rank(), 3, "slice_axis1 requires rank 3");
            let (b, t, d) = (x.shape()[0], x.shape()[1], x.shape()[2]);
            assert!(start + len <= t, "slice_axis1 out of range");
            let mut out = self.tape.alloc_overwrite(b * len * d);
            for bi in 0..b {
                let base = bi * t * d + start * d;
                out[bi * len * d..(bi + 1) * len * d]
                    .copy_from_slice(&x.data()[base..base + len * d]);
            }
            Tensor::from_vec(out, &[b, len, d])
        };
        self.tape.push(Op::SliceAxis1 { x: self.id, start }, out)
    }

    /// Concatenate rank-3 values along axis 1.
    pub fn concat_axis1(parts: &[Var<'t>]) -> Var<'t> {
        assert!(!parts.is_empty(), "concat_axis1 of nothing");
        let tape = parts[0].tape;
        let out = {
            let nodes = tape.nodes.borrow();
            let vals: Vec<&Tensor> = parts.iter().map(|p| &nodes[p.id].value).collect();
            let (b, d) = (vals[0].shape()[0], vals[0].shape()[2]);
            let total_t: usize = vals.iter().map(|v| v.shape()[1]).sum();
            for v in &vals {
                assert_eq!(v.rank(), 3, "concat_axis1 requires rank 3");
                assert_eq!(v.shape()[0], b, "batch dims must match");
                assert_eq!(v.shape()[2], d, "feature dims must match");
            }
            let mut out = tape.alloc_overwrite(b * total_t * d);
            let mut dst = 0usize;
            for bi in 0..b {
                for v in &vals {
                    let t = v.shape()[1];
                    out[dst..dst + t * d].copy_from_slice(&v.data()[bi * t * d..(bi + 1) * t * d]);
                    dst += t * d;
                }
            }
            Tensor::from_vec(out, &[b, total_t, d])
        };
        tape.push(Op::ConcatAxis1(parts.iter().map(|p| p.id).collect()), out)
    }

    /// Select slot `idx` along axis 1: `[B, T, D] -> [B, D]`.
    pub fn select_axis1(self, idx: usize) -> Var<'t> {
        let out = {
            let x = self.tape.val(self.id);
            assert_eq!(x.rank(), 3, "select_axis1 requires rank 3");
            let (b, t, d) = (x.shape()[0], x.shape()[1], x.shape()[2]);
            assert!(idx < t, "select_axis1 index out of range");
            let mut out = self.tape.alloc_overwrite(b * d);
            for bi in 0..b {
                let base = bi * t * d + idx * d;
                out[bi * d..(bi + 1) * d].copy_from_slice(&x.data()[base..base + d]);
            }
            Tensor::from_vec(out, &[b, d])
        };
        self.tape.push(Op::SelectAxis1 { x: self.id, idx }, out)
    }

    /// Mean over axis 1: `[B, T, D] -> [B, D]`.
    pub fn mean_axis1(self) -> Var<'t> {
        let out = {
            let x = self.tape.val(self.id);
            assert_eq!(x.rank(), 3, "mean_axis1 requires rank 3");
            let (b, t, d) = (x.shape()[0], x.shape()[1], x.shape()[2]);
            let mut out = self.tape.alloc_zeroed(b * d);
            for bi in 0..b {
                for ti in 0..t {
                    for j in 0..d {
                        out[bi * d + j] += x.data()[bi * t * d + ti * d + j];
                    }
                }
            }
            let inv = 1.0 / t as f32;
            out.iter_mut().for_each(|v| *v *= inv);
            Tensor::from_vec(out, &[b, d])
        };
        self.tape.push(Op::MeanAxis1(self.id), out)
    }

    /// Concatenate two rank-2 values along the last axis:
    /// `[B, D1] ⊕ [B, D2] -> [B, D1 + D2]`.
    pub fn concat_last(self, rhs: Var<'t>) -> Var<'t> {
        let out = {
            let va = self.tape.val(self.id);
            let vb = self.tape.val(rhs.id);
            assert_eq!(va.rank(), 2, "concat_last requires rank 2");
            assert_eq!(vb.rank(), 2, "concat_last requires rank 2");
            assert_eq!(va.shape()[0], vb.shape()[0], "batch dims must match");
            let (b, da, db) = (va.shape()[0], va.shape()[1], vb.shape()[1]);
            let mut out = self.tape.alloc_overwrite(b * (da + db));
            for bi in 0..b {
                let base = bi * (da + db);
                out[base..base + da].copy_from_slice(&va.data()[bi * da..(bi + 1) * da]);
                out[base + da..base + da + db].copy_from_slice(&vb.data()[bi * db..(bi + 1) * db]);
            }
            Tensor::from_vec(out, &[b, da + db])
        };
        self.tape.push(Op::ConcatLast(self.id, rhs.id), out)
    }

    /// Mean over all elements, producing shape `[1]`.
    pub fn mean_all(self) -> Var<'t> {
        let out = Tensor::scalar(self.tape.val(self.id).mean());
        self.tape.push(Op::MeanAll(self.id), out)
    }

    /// Mean squared error against a constant target, producing shape `[1]`.
    pub fn mse_loss(self, target: &Tensor) -> Var<'t> {
        let loss = {
            let p = self.tape.val(self.id);
            assert_eq!(p.shape(), target.shape(), "mse_loss shape mismatch");
            p.data()
                .iter()
                .zip(target.data().iter())
                .map(|(p, t)| {
                    let d = (p - t) as f64;
                    d * d
                })
                .sum::<f64>()
                / p.numel() as f64
        };
        if !self.tape.grad {
            return self.tape.push(Op::Leaf, Tensor::scalar(loss as f32));
        }
        let saved = self.tape.t_copy(target, target.shape());
        self.tape.push(
            Op::MseLoss {
                pred: self.id,
                target: saved,
            },
            Tensor::scalar(loss as f32),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_add_sub_mul() {
        let t = Tape::new();
        let a = t.input(Tensor::from_vec(vec![1.0, 2.0], &[2]));
        let b = t.input(Tensor::from_vec(vec![3.0, 5.0], &[2]));
        assert_eq!(a.add(b).value().data(), &[4.0, 7.0]);
        assert_eq!(a.sub(b).value().data(), &[-2.0, -3.0]);
        assert_eq!(a.mul(b).value().data(), &[3.0, 10.0]);
    }

    #[test]
    fn add_broadcasts_bias_and_leading() {
        let t = Tape::new();
        let x = t.input(Tensor::ones(&[2, 2, 3]));
        let bias = t.input(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]));
        let y = x.add(bias);
        assert_eq!(y.value().at(&[1, 1, 2]), 4.0);
        let pe = t.input(Tensor::from_vec(
            (0..6).map(|i| i as f32).collect(),
            &[2, 3],
        ));
        let z = x.add(pe);
        assert_eq!(z.value().at(&[0, 1, 2]), 6.0);
        assert_eq!(z.value().at(&[1, 1, 2]), 6.0);
    }

    #[test]
    fn backward_through_chain() {
        // loss = mean((a*b + a)^2) with a=[1,2], b=[3,4]
        let t = Tape::new();
        let pa = Param::new("a", Tensor::from_vec(vec![1.0, 2.0], &[2]));
        let pb = Param::new("b", Tensor::from_vec(vec![3.0, 4.0], &[2]));
        let a = t.param(&pa);
        let b = t.param(&pb);
        let y = a.mul(b).add(a); // [4, 10]
        let loss = y.mse_loss(&Tensor::zeros(&[2]));
        assert!((loss.value().item() - (16.0 + 100.0) / 2.0).abs() < 1e-5);
        t.backward(loss);
        // dL/dy = y, dL/da = y*(b+1), dL/db = y*a
        assert!(pa
            .grad()
            .allclose(&Tensor::from_vec(vec![4.0 * 4.0, 10.0 * 5.0], &[2]), 1e-4));
        assert!(pb
            .grad()
            .allclose(&Tensor::from_vec(vec![4.0, 20.0], &[2]), 1e-4));
    }

    #[test]
    fn matmul_forward_2d() {
        let t = Tape::new();
        let a = t.input(Tensor::arange(6).reshape(&[2, 3]));
        let b = t.input(Tensor::arange(12).reshape(&[3, 4]));
        let c = a.matmul(b);
        assert_eq!(c.shape(), vec![2, 4]);
        // row 0 of a = [0,1,2]; col 0 of b = [0,4,8] -> 0*0+1*4+2*8=20
        assert_eq!(c.value().at(&[0, 0]), 20.0);
    }

    #[test]
    fn matmul_forward_batched() {
        let t = Tape::new();
        let a = t.input(Tensor::ones(&[2, 3, 4]));
        let b = t.input(Tensor::ones(&[2, 4, 5]));
        let c = a.matmul(b);
        assert_eq!(c.shape(), vec![2, 3, 5]);
        assert!(c.value().data().iter().all(|&x| x == 4.0));
    }

    #[test]
    #[should_panic(expected = "matmul inner dims")]
    fn matmul_rejects_bad_inner() {
        let t = Tape::new();
        let a = t.input(Tensor::ones(&[2, 3]));
        let b = t.input(Tensor::ones(&[4, 5]));
        a.matmul(b);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let t = Tape::new();
        let x = t.input(Tensor::randn(&[4, 7], 3));
        let y = x.softmax_last().value();
        for row in y.data().chunks(7) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert!(row.iter().all(|&p| p > 0.0));
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let t = Tape::new();
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]);
        let shifted = x.map(|v| v + 1000.0);
        let y1 = t.input(x).softmax_last().value();
        let y2 = t.input(shifted).softmax_last().value();
        assert!(y1.allclose(&y2, 1e-5));
    }

    #[test]
    fn scaled_softmax_matches_scale_then_softmax() {
        let t = Tape::new();
        let x = Tensor::randn(&[3, 6], 17);
        let fused = t.input(x.clone()).scaled_softmax_last(0.25).value();
        let composed = t.input(x).scale(0.25).softmax_last().value();
        assert!(fused.allclose(&composed, 1e-6));
    }

    #[test]
    fn attn_ops_match_transpose_composition() {
        // The transpose-free path must agree (values and gradients) with
        // the classic reshape/transpose/matmul formulation.
        let (b, t, h, dh) = (2usize, 5, 2, 3);
        let d = h * dh;
        let q = Param::new("q", Tensor::randn(&[b, t, h, dh], 1));
        let k = Param::new("k", Tensor::randn(&[b, t, h, dh], 2));
        let v = Param::new("v", Tensor::randn(&[b, t, h, dh], 3));
        let target = Tensor::randn(&[b, t, d], 4);
        let scale = 1.0 / (dh as f32).sqrt();

        let run = |fused: bool| {
            for p in [&q, &k, &v] {
                p.zero_grad();
            }
            let tape = Tape::new();
            let (qv, kv, vv) = (tape.param(&q), tape.param(&k), tape.param(&v));
            let out = if fused {
                let attn = qv.attn_scores(kv).scaled_softmax_last(scale);
                attn.attn_context(vv).reshape(&[b, t, d])
            } else {
                fn split<'a>(x: Var<'a>) -> Var<'a> {
                    x.transpose_axes_1_2()
                }
                let attn = split(qv)
                    .matmul(split(kv).transpose_last2())
                    .scale(scale)
                    .softmax_last();
                attn.matmul(split(vv))
                    .transpose_axes_1_2()
                    .reshape(&[b, t, d])
            };
            let loss = out.mse_loss(&target);
            tape.backward(loss);
            (
                out.value(),
                loss.value().item(),
                q.grad(),
                k.grad(),
                v.grad(),
            )
        };
        let fused = run(true);
        let classic = run(false);
        assert!(fused.0.allclose(&classic.0, 1e-5), "forward diverged");
        assert!((fused.1 - classic.1).abs() < 1e-6, "loss diverged");
        assert!(fused.2.allclose(&classic.2, 1e-4), "dQ diverged");
        assert!(fused.3.allclose(&classic.3, 1e-4), "dK diverged");
        assert!(fused.4.allclose(&classic.4, 1e-4), "dV diverged");
    }

    #[test]
    fn tape_reset_recycles_and_reproduces() {
        let p = Param::new("w", Tensor::randn(&[6, 6], 9));
        let x = Tensor::randn(&[4, 6], 10);
        let run = |tape: &Tape| {
            let y = tape.input(x.clone()).matmul(tape.param(&p));
            let loss = y.mse_loss(&Tensor::zeros(&[4, 6]));
            let bundle = tape.backward_params(loss);
            (loss.value().item(), bundle.get(&p).unwrap().clone())
        };
        let mut tape = Tape::with_seed(5);
        let first = run(&tape);
        let nodes = tape.len();
        let retired_by_backward = tape.scratch_buffers();
        tape.reset(5);
        assert!(tape.is_empty());
        assert!(
            tape.scratch_buffers() > retired_by_backward,
            "reset must retire node buffers into the arena"
        );
        let second = run(&tape);
        assert_eq!(tape.len(), nodes, "graph must rebuild identically");
        assert_eq!(first.0, second.0, "loss must be bit-identical after reset");
        assert_eq!(first.1, second.1, "grads must be bit-identical after reset");
    }

    #[test]
    fn backward_params_recycles_intermediates() {
        let p = Param::new("w", Tensor::randn(&[8, 8], 11));
        let tape = Tape::with_seed(7);
        let y = tape.param(&p).relu().matmul(tape.param(&p));
        let loss = y.mse_loss(&Tensor::zeros(&[8, 8]));
        tape.backward_params(loss);
        assert!(
            tape.scratch_buffers() > 0,
            "backward_params must retire intermediate gradients"
        );
    }

    #[test]
    fn layer_norm_normalizes_rows() {
        let t = Tape::new();
        let x = t.input(Tensor::randn(&[5, 16], 11));
        let g = t.input(Tensor::ones(&[16]));
        let b = t.input(Tensor::zeros(&[16]));
        let y = x.layer_norm(g, b, 1e-5).value();
        for row in y.data().chunks(16) {
            let mean = row.iter().sum::<f32>() / 16.0;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 16.0;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn slice_concat_roundtrip_preserves_values_and_grads() {
        let t = Tape::new();
        let p = Param::new("x", Tensor::arange(24).reshape(&[2, 4, 3]));
        let x = t.param(&p);
        let a = x.slice_axis1(0, 1);
        let b = x.slice_axis1(1, 3);
        let y = Var::concat_axis1(&[a, b]);
        assert_eq!(y.value(), x.value());
        let loss = y.mse_loss(&Tensor::zeros(&[2, 4, 3]));
        t.backward(loss);
        // grad = 2x/N; every element must receive gradient exactly once.
        let expect = p.value().map(|v| 2.0 * v / 24.0);
        assert!(p.grad().allclose(&expect, 1e-5));
    }

    #[test]
    fn select_and_mean_axis1() {
        let t = Tape::new();
        let x = t.input(Tensor::arange(12).reshape(&[2, 3, 2]));
        let s = x.select_axis1(2);
        assert_eq!(s.value().data(), &[4.0, 5.0, 10.0, 11.0]);
        let m = x.mean_axis1();
        assert_eq!(m.value().data(), &[2.0, 3.0, 8.0, 9.0]);
    }

    #[test]
    fn concat_last_joins_features() {
        let t = Tape::new();
        let a = t.input(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]));
        let b = t.input(Tensor::from_vec(vec![9.0, 8.0], &[2, 1]));
        let y = a.concat_last(b);
        assert_eq!(y.shape(), vec![2, 3]);
        assert_eq!(y.value().data(), &[1.0, 2.0, 9.0, 3.0, 4.0, 8.0]);
    }

    #[test]
    fn mul_const_blocks_gradient_to_mask() {
        let t = Tape::new();
        let p = Param::new("x", Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]));
        let mask = Tensor::from_vec(vec![1.0, 0.0, 2.0], &[3]);
        let y = t.param(&p).mul_const(&mask);
        assert_eq!(y.value().data(), &[1.0, 0.0, 6.0]);
        let loss = y.mse_loss(&Tensor::zeros(&[3]));
        t.backward(loss);
        // dL/dx = 2/3 * y * mask
        let expect = Tensor::from_vec(vec![2.0 / 3.0, 0.0, 8.0], &[3]);
        assert!(p.grad().allclose(&expect, 1e-5));
    }

    #[test]
    fn gradient_accumulates_across_backwards() {
        let p = Param::new("w", Tensor::from_vec(vec![2.0], &[1]));
        for _ in 0..2 {
            let t = Tape::new();
            let w = t.param(&p);
            let loss = w.mse_loss(&Tensor::zeros(&[1]));
            t.backward(loss);
        }
        // each pass adds 2*w/1 = 4
        assert!((p.grad().item() - 8.0).abs() < 1e-5);
    }

    #[test]
    fn diamond_graph_sums_gradients() {
        // y = a + a -> dy/da = 2
        let t = Tape::new();
        let p = Param::new("a", Tensor::from_vec(vec![3.0], &[1]));
        let a = t.param(&p);
        let y = a.add(a);
        let loss = y.mean_all();
        t.backward(loss);
        assert!((p.grad().item() - 2.0).abs() < 1e-5);
    }

    #[test]
    fn backward_params_matches_deposited_grads() {
        let build = || {
            (
                Param::new("a", Tensor::from_vec(vec![1.0, 2.0], &[2])),
                Param::new("b", Tensor::from_vec(vec![3.0, 4.0], &[2])),
            )
        };
        let (pa, pb) = build();
        let run = |pa: &Param, pb: &Param, deposit: bool| -> Option<ParamGrads> {
            let t = Tape::new();
            let y = t.param(pa).mul(t.param(pb)).add(t.param(pa));
            let loss = y.mse_loss(&Tensor::zeros(&[2]));
            if deposit {
                t.backward(loss);
                None
            } else {
                Some(t.backward_params(loss))
            }
        };
        run(&pa, &pb, true);
        let (qa, qb) = build();
        let bundle = run(&qa, &qb, false).unwrap();
        // Collected bundle bit-matches the deposited slots...
        assert_eq!(bundle.get(&qa).unwrap(), &pa.grad());
        assert_eq!(bundle.get(&qb).unwrap(), &pb.grad());
        assert_eq!(bundle.len(), 2);
        // ...and collection left the params' own slots untouched.
        assert_eq!(qa.grad().data(), &[0.0, 0.0]);
        bundle.apply();
        assert_eq!(qa.grad(), pa.grad());
    }

    #[test]
    fn backward_params_skips_frozen() {
        let p = Param::new("w", Tensor::from_vec(vec![2.0], &[1]));
        p.set_trainable(false);
        let t = Tape::new();
        let loss = t.param(&p).mse_loss(&Tensor::zeros(&[1]));
        let bundle = t.backward_params(loss);
        assert!(bundle.is_empty());
        assert!(bundle.get(&p).is_none());
    }

    #[test]
    fn bundle_reduce_is_ordered_sum() {
        let p = Param::new("w", Tensor::from_vec(vec![1.0], &[1]));
        let one = |scale: f32| {
            let t = Tape::new();
            let loss = t.param(&p).scale(scale).mse_loss(&Tensor::zeros(&[1]));
            t.backward_params(loss)
        };
        let shards = vec![one(1.0), one(2.0), one(3.0)];
        let expect: f32 = shards.iter().map(|s| s.get(&p).unwrap().item()).sum();
        let reduced = ParamGrads::reduce(shards).unwrap();
        assert_eq!(reduced.get(&p).unwrap().item(), expect);
        assert!(ParamGrads::reduce(std::iter::empty()).is_none());
        // Norm and scale round-trip.
        let mut r = reduced;
        let n = r.global_norm();
        assert!(n > 0.0);
        r.scale(1.0 / n);
        assert!((r.global_norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn tape_rng_stream_is_seed_deterministic() {
        let a = Tape::with_seed(42);
        let b = Tape::with_seed(42);
        let xs: Vec<u64> = (0..4).map(|_| a.rng_next()).collect();
        let ys: Vec<u64> = (0..4).map(|_| b.rng_next()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs[0], xs[1], "stream must advance");
        let c = Tape::with_seed(43);
        assert_ne!(xs[0], c.rng_next(), "seeds must decorrelate");
    }

    /// A forward pass touching every op with a no-grad specialization
    /// (matmul, layer_norm, mul_const, scaled softmax, mse_loss).
    fn mixed_forward(tape: &Tape, p: &Param, x: &Tensor) -> (Tensor, f32) {
        let gamma = tape.input(Tensor::ones(&[6]));
        let beta = tape.input(Tensor::zeros(&[6]));
        let mask = Tensor::uniform(&[4, 6], 0.5, 1.5, 21);
        let h = tape
            .input(x.clone())
            .matmul(tape.param(p))
            .layer_norm(gamma, beta, 1e-5)
            .mul_const(&mask)
            .scaled_softmax_last(0.7)
            .gelu();
        let loss = h.mse_loss(&Tensor::zeros(&[4, 6]));
        (h.value(), loss.value().item())
    }

    #[test]
    fn inference_forward_is_bit_identical_to_recording_forward() {
        let p = Param::new("w", Tensor::randn(&[6, 6], 19));
        let x = Tensor::randn(&[4, 6], 20);
        let train = Tape::with_seed(3);
        let infer = Tape::inference_with_seed(3);
        assert!(train.records_grad());
        assert!(!infer.records_grad());
        let (yt, lt) = mixed_forward(&train, &p, &x);
        let (yi, li) = mixed_forward(&infer, &p, &x);
        assert_eq!(yt, yi, "inference values must be bit-identical");
        assert_eq!(lt.to_bits(), li.to_bits(), "loss must be bit-identical");
        // Same node ids on both tapes: the kernel sequence is identical.
        assert_eq!(train.len(), infer.len());
    }

    #[test]
    #[should_panic(expected = "backward on an inference tape")]
    fn inference_tape_rejects_backward() {
        let p = Param::new("w", Tensor::randn(&[2, 2], 1));
        let tape = Tape::inference();
        let loss = tape.param(&p).mse_loss(&Tensor::zeros(&[2, 2]));
        tape.backward(loss);
    }

    #[test]
    fn inference_reset_keeps_mode_and_reuses_arena() {
        let p = Param::new("w", Tensor::randn(&[8, 8], 23));
        let x = Tensor::randn(&[4, 8], 24);
        let mut tape = Tape::inference_with_seed(0);
        let run = |tape: &Tape| tape.input(x.clone()).matmul(tape.param(&p)).value();
        let first = run(&tape);
        tape.reset(0);
        assert!(!tape.records_grad(), "reset must not change the mode");
        assert!(
            tape.scratch_buffers() > 0,
            "reset must retire inference buffers into the arena"
        );
        assert_eq!(first, run(&tape), "reset tape must reproduce bits");
    }

    #[test]
    fn inference_mode_skips_backward_only_allocations() {
        // The backward-only saved tensors (mask copy, xhat, target) must
        // not survive on an inference tape: after reset, the recording
        // tape has strictly more retired buffers than the inference tape
        // for the same program.
        let p = Param::new("w", Tensor::randn(&[6, 6], 29));
        let x = Tensor::randn(&[4, 6], 30);
        let count = |mut tape: Tape| {
            mixed_forward(&tape, &p, &x);
            tape.reset(0);
            tape.scratch_buffers()
        };
        let recorded = count(Tape::with_seed(1));
        let inferred = count(Tape::inference_with_seed(1));
        assert!(
            inferred < recorded,
            "inference should retire fewer buffers ({inferred} vs {recorded})"
        );
    }

    #[test]
    fn attn_fused_matches_classic_chain_values_and_grads() {
        // The fused op must agree with the three-op chain to epsilon —
        // values and all three input gradients. (Bit-equality is not
        // claimed: the online softmax reorders the IEEE sequence.)
        let (b, t, h, dh) = (2usize, 17, 2, 5);
        let d = h * dh;
        let q = Param::new("q", Tensor::randn(&[b, t, h, dh], 1));
        let k = Param::new("k", Tensor::randn(&[b, t, h, dh], 2));
        let v = Param::new("v", Tensor::randn(&[b, t, h, dh], 3));
        let target = Tensor::randn(&[b, t, d], 4);
        let scale = 1.0 / (dh as f32).sqrt();

        let run = |fused: bool| {
            for p in [&q, &k, &v] {
                p.zero_grad();
            }
            let tape = Tape::new();
            let (qv, kv, vv) = (tape.param(&q), tape.param(&k), tape.param(&v));
            let ctx = if fused {
                qv.attn_fused(kv, vv, scale)
            } else {
                qv.attn_scores(kv)
                    .scaled_softmax_last(scale)
                    .attn_context(vv)
            };
            let loss = ctx.reshape(&[b, t, d]).mse_loss(&target);
            tape.backward(loss);
            (
                ctx.value(),
                loss.value().item(),
                q.grad(),
                k.grad(),
                v.grad(),
            )
        };
        let fused = run(true);
        let classic = run(false);
        assert!(fused.0.allclose(&classic.0, 1e-5), "forward diverged");
        assert!((fused.1 - classic.1).abs() < 1e-5, "loss diverged");
        assert!(fused.2.allclose(&classic.2, 1e-4), "dQ diverged");
        assert!(fused.3.allclose(&classic.3, 1e-4), "dK diverged");
        assert!(fused.4.allclose(&classic.4, 1e-4), "dV diverged");
    }

    #[test]
    fn attn_fused_grad_check() {
        // Finite-difference ground truth for the recompute-on-the-fly
        // backward, for each of the three operands.
        let (b, t, h, dh) = (2usize, 5, 2, 3);
        let q = Param::new("q", Tensor::randn(&[b, t, h, dh], 41));
        let k = Param::new("k", Tensor::randn(&[b, t, h, dh], 42));
        let v = Param::new("v", Tensor::randn(&[b, t, h, dh], 43));
        let target = Tensor::randn(&[b, t, h, dh], 44);
        let scale = 1.0 / (dh as f32).sqrt();
        for p in [&q, &k, &v] {
            let f = crate::grad_check::loss_fn(|tape: &Tape| {
                tape.param(&q)
                    .attn_fused(tape.param(&k), tape.param(&v), scale)
                    .mse_loss(&target)
            });
            let report = crate::grad_check::check_param_grad(p, 1e-2, f);
            assert!(
                report.passes(2e-2),
                "attn_fused grad check failed for {}: {report:?}",
                p.name()
            );
        }
    }

    #[test]
    fn attn_fused_inference_tape_allocates_no_score_matrix() {
        // The zero-score-allocation claim, asserted through the arena:
        // after a reset retires every tape-allocated buffer, no bucket
        // may hold a [B,H,T,T]- or [B,T,T]-sized buffer. Shape chosen so
        // those lengths collide with nothing legitimate (t > h*dh).
        let (b, t, h, dh) = (2usize, 19, 2, 4);
        let q = Tensor::randn(&[b, t, h, dh], 51);
        let k = Tensor::randn(&[b, t, h, dh], 52);
        let v = Tensor::randn(&[b, t, h, dh], 53);
        let run = |mut tape: Tape| {
            let ctx =
                tape.input(q.clone())
                    .attn_fused(tape.input(k.clone()), tape.input(v.clone()), 0.5);
            let val = ctx.value();
            tape.reset(0);
            (val, tape.arena_bucket_lens())
        };
        let (iv, infer_buckets) = run(Tape::inference_with_seed(7));
        let (rv, record_buckets) = run(Tape::with_seed(7));
        assert_eq!(iv, rv, "fused forward must not depend on the tape mode");
        let forbidden = [b * h * t * t, b * t * t, h * t * t, t * t];
        for (len, _) in &infer_buckets {
            assert!(
                !forbidden.contains(len),
                "inference fused path retired a score-matrix-sized buffer ({len})"
            );
        }
        for (len, _) in &record_buckets {
            assert!(
                !forbidden.contains(len),
                "recording fused path retired a score-matrix-sized buffer ({len})"
            );
        }
        // Recording tapes additionally retire the [B,H,T,2] stats...
        let stats_len = b * h * t * kernels::FUSED_STATS_PER_ROW;
        assert!(
            record_buckets.iter().any(|&(len, _)| len == stats_len),
            "recording tape should have retired the softmax stats"
        );
        // ...which the inference tape never allocates.
        assert!(
            !infer_buckets.iter().any(|&(len, _)| len == stats_len),
            "inference tape must not allocate softmax stats"
        );
    }

    #[test]
    fn attn_fused_reset_reproduces_bits() {
        let (b, t, h, dh) = (3usize, 13, 2, 6);
        let q = Tensor::randn(&[b, t, h, dh], 61);
        let k = Tensor::randn(&[b, t, h, dh], 62);
        let v = Tensor::randn(&[b, t, h, dh], 63);
        let mut tape = Tape::inference_with_seed(1);
        let run = |tape: &Tape| {
            tape.input(q.clone())
                .attn_fused(tape.input(k.clone()), tape.input(v.clone()), 0.25)
                .value()
        };
        let first = run(&tape);
        tape.reset(1);
        assert_eq!(first, run(&tape), "reset fused tape must reproduce bits");
    }

    #[test]
    fn arena_tracks_bytes_and_caps_buckets() {
        let s = Scratch::default();
        assert_eq!(s.bytes.get(), 0);
        // Retire more giant buffers than the byte cap admits: the
        // bucket must stop absorbing them while always keeping >= 1.
        let giant = SCRATCH_BUCKET_BYTE_CAP / F32_BYTES / 2 - 1; // 2 fit, 3 would not
        for _ in 0..5 {
            s.put(vec![0.0; giant]);
        }
        let kept = s.bucket_lens();
        assert_eq!(kept, vec![(giant, 2)], "byte cap must bound the bucket");
        assert_eq!(s.bytes.get(), 2 * giant * F32_BYTES);
        assert_eq!(s.high_water.get(), 2 * giant * F32_BYTES);
        // A buffer larger than the whole cap is still kept (once).
        let colossal = SCRATCH_BUCKET_BYTE_CAP / F32_BYTES + 7;
        s.put(vec![0.0; colossal]);
        s.put(vec![0.0; colossal]);
        assert!(
            s.bucket_lens().contains(&(colossal, 1)),
            "every bucket keeps at least one buffer"
        );
        // Taking releases the byte accounting; high-water stays.
        let hw = s.high_water.get();
        let _ = s.take_overwrite(colossal);
        assert_eq!(s.bytes.get(), 2 * giant * F32_BYTES);
        assert_eq!(s.high_water.get(), hw);
        // Small buffers still hit the count cap first.
        for _ in 0..SCRATCH_BUCKET_CAP + 9 {
            s.put(vec![0.0; 8]);
        }
        assert!(s.bucket_lens().contains(&(8, SCRATCH_BUCKET_CAP)));
    }

    #[test]
    fn gradients_struct_exposes_intermediates() {
        let t = Tape::new();
        let a = t.input(Tensor::from_vec(vec![1.0, 2.0], &[2]));
        let y = a.scale(3.0);
        let loss = y.mean_all();
        let grads = t.backward(loss);
        let ga = grads.get(a).expect("input gradient");
        assert!(ga.allclose(&Tensor::from_vec(vec![1.5, 1.5], &[2]), 1e-6));
        // Nodes after the loss (none here) or disconnected nodes have no grad.
        let unused = t.input(Tensor::ones(&[1]));
        assert!(grads.get(unused).is_none());
    }
}
