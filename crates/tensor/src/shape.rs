//! Shape arithmetic for row-major tensors.
//!
//! Shapes are plain `Vec<usize>` dimension lists; this module centralizes
//! the element-count, stride, and compatibility math so the rest of the
//! crate never re-derives it ad hoc.

/// Number of elements a shape describes. The empty shape (a "scalar
/// placeholder") has one element, matching the convention that a tensor
/// with shape `[]` stores a single value.
pub fn numel(shape: &[usize]) -> usize {
    shape.iter().product()
}

/// Row-major strides for `shape` (innermost dimension has stride 1).
pub fn strides(shape: &[usize]) -> Vec<usize> {
    let mut out = vec![1usize; shape.len()];
    for i in (0..shape.len().saturating_sub(1)).rev() {
        out[i] = out[i + 1] * shape[i + 1];
    }
    out
}

/// Flat row-major offset of a multi-dimensional index.
///
/// Panics in debug builds if the index is out of range.
pub fn offset(shape: &[usize], index: &[usize]) -> usize {
    debug_assert_eq!(shape.len(), index.len(), "index rank mismatch");
    let mut off = 0;
    let mut stride = 1;
    for d in (0..shape.len()).rev() {
        debug_assert!(index[d] < shape[d], "index out of range in dim {d}");
        off += index[d] * stride;
        stride *= shape[d];
    }
    off
}

/// Broadcast relationship between an output shape and a smaller operand.
///
/// The tensor crate supports the three explicit broadcast forms the NTT
/// model needs (kept deliberately narrower than NumPy semantics so every
/// accepted combination is obviously intentional and separately tested):
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Broadcast {
    /// Identical shapes.
    Same,
    /// `b` matches the trailing dimensions of `a` and is repeated over the
    /// leading ones (e.g. positional encoding `[T, D]` added to `[B, T, D]`).
    Leading,
    /// `b` is a vector matching only the innermost dimension of `a`
    /// (e.g. a bias `[D]` added to `[B, T, D]`).
    Inner,
}

/// Classify how `b` broadcasts against `a`, if at all.
pub fn broadcast_kind(a: &[usize], b: &[usize]) -> Option<Broadcast> {
    if a == b {
        return Some(Broadcast::Same);
    }
    if b.len() < a.len() && !b.is_empty() && a[a.len() - b.len()..] == *b {
        if b.len() == 1 {
            return Some(Broadcast::Inner);
        }
        return Some(Broadcast::Leading);
    }
    None
}

/// Validate a reshape: the element counts must match.
pub fn check_reshape(from: &[usize], to: &[usize]) {
    assert_eq!(
        numel(from),
        numel(to),
        "reshape cannot change element count: {from:?} -> {to:?}"
    );
}

/// Split a shape interpreted as `[batch..., rows, cols]` into
/// `(batch_product, rows, cols)`. Used by the matmul front-end, which
/// treats every tensor of rank >= 2 as a stack of matrices.
pub fn as_batched_matrix(shape: &[usize]) -> (usize, usize, usize) {
    assert!(
        shape.len() >= 2,
        "matrix view requires rank >= 2, got {shape:?}"
    );
    let cols = shape[shape.len() - 1];
    let rows = shape[shape.len() - 2];
    let batch = shape[..shape.len() - 2].iter().product();
    (batch, rows, cols)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_counts_elements() {
        assert_eq!(numel(&[2, 3, 4]), 24);
        assert_eq!(numel(&[7]), 7);
        assert_eq!(numel(&[]), 1);
        assert_eq!(numel(&[3, 0, 2]), 0);
    }

    #[test]
    fn strides_are_row_major() {
        assert_eq!(strides(&[2, 3, 4]), vec![12, 4, 1]);
        assert_eq!(strides(&[5]), vec![1]);
        assert_eq!(strides(&[]), Vec::<usize>::new());
    }

    #[test]
    fn offset_walks_row_major() {
        let shape = [2, 3, 4];
        assert_eq!(offset(&shape, &[0, 0, 0]), 0);
        assert_eq!(offset(&shape, &[0, 0, 3]), 3);
        assert_eq!(offset(&shape, &[0, 1, 0]), 4);
        assert_eq!(offset(&shape, &[1, 2, 3]), 23);
    }

    #[test]
    fn broadcast_same() {
        assert_eq!(broadcast_kind(&[2, 3], &[2, 3]), Some(Broadcast::Same));
    }

    #[test]
    fn broadcast_leading_matches_trailing_dims() {
        assert_eq!(
            broadcast_kind(&[8, 48, 64], &[48, 64]),
            Some(Broadcast::Leading)
        );
    }

    #[test]
    fn broadcast_inner_is_bias_vector() {
        assert_eq!(broadcast_kind(&[8, 48, 64], &[64]), Some(Broadcast::Inner));
        assert_eq!(broadcast_kind(&[8, 64], &[64]), Some(Broadcast::Inner));
    }

    #[test]
    fn broadcast_rejects_mismatch() {
        assert_eq!(broadcast_kind(&[8, 48, 64], &[48]), None);
        assert_eq!(broadcast_kind(&[8, 48, 64], &[8, 48]), None);
        assert_eq!(broadcast_kind(&[4], &[4, 4]), None);
    }

    #[test]
    fn batched_matrix_view() {
        assert_eq!(as_batched_matrix(&[6, 4]), (1, 6, 4));
        assert_eq!(as_batched_matrix(&[2, 3, 6, 4]), (6, 6, 4));
    }

    #[test]
    #[should_panic(expected = "reshape cannot change element count")]
    fn reshape_check_rejects_bad_count() {
        check_reshape(&[2, 3], &[7]);
    }
}
