//! Matrix-multiplication kernels.
//!
//! Three layouts cover forward and backward passes without materializing
//! transposes:
//!
//! * `gemm_nn`: `C += A[m,k] · B[k,n]`
//! * `gemm_nt`: `C += A[m,k] · B[n,k]ᵀ`   (gradient w.r.t. the left operand)
//! * `gemm_tn`: `C += A[k,m]ᵀ · B[k,n]`   (gradient w.r.t. the right operand)
//!
//! All kernels use an `i-k-j` loop order so the innermost loop walks both
//! `B` and `C` contiguously — this autovectorizes well and is an order of
//! magnitude faster than the naive `i-j-k` order. Work above
//! [`PAR_THRESHOLD`] FLOPs is split over row blocks on scoped std
//! threads (the guides are explicit that CPU-bound work belongs on
//! threads, not an async runtime).

/// Minimum multiply-accumulate count before spawning threads; below this
/// the spawn overhead dominates.
pub const PAR_THRESHOLD: usize = 1 << 18;

std::thread_local! {
    /// When set, kernels on this thread never spawn row-block threads.
    /// The data-parallel trainer sets it on its workers: parallelism
    /// then comes from microbatch shards, and nesting gemm threads
    /// underneath would oversubscribe the cores.
    static SEQUENTIAL: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Run `f` with this thread's kernels forced sequential (restored on
/// exit, panic included). Results are bit-identical either way — the
/// row partition assigns every output element to exactly one thread
/// with an unchanged inner loop — so this is purely a scheduling knob.
pub fn with_sequential<R>(f: impl FnOnce() -> R) -> R {
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            SEQUENTIAL.with(|s| s.set(self.0));
        }
    }
    let _restore = Restore(SEQUENTIAL.with(|s| s.replace(true)));
    f()
}

fn par_rows(m: usize, work_per_row: usize) -> usize {
    let total = m * work_per_row;
    if total < PAR_THRESHOLD || SEQUENTIAL.with(|s| s.get()) {
        return 1;
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    cores.min(m).max(1)
}

/// Run `body(row_range, c_chunk)` over `m` rows, in parallel when profitable.
fn for_row_blocks<F>(m: usize, n: usize, work_per_row: usize, c: &mut [f32], body: F)
where
    F: Fn(std::ops::Range<usize>, &mut [f32]) + Sync,
{
    let threads = par_rows(m, work_per_row);
    if threads <= 1 {
        body(0..m, c);
        return;
    }
    let rows_per = m.div_ceil(threads);
    std::thread::scope(|s| {
        let mut rest = c;
        let mut start = 0usize;
        while start < m {
            let rows = rows_per.min(m - start);
            let (chunk, tail) = rest.split_at_mut(rows * n);
            rest = tail;
            let range = start..start + rows;
            let body = &body;
            s.spawn(move || body(range, chunk));
            start += rows;
        }
    });
}

/// `C[m,n] += A[m,k] · B[k,n]`.
pub fn gemm_nn(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    for_row_blocks(m, n, k * n, c, |rows, chunk| {
        for (ci, i) in rows.enumerate() {
            let crow = &mut chunk[ci * n..(ci + 1) * n];
            for p in 0..k {
                let aval = a[i * k + p];
                if aval == 0.0 {
                    continue;
                }
                let brow = &b[p * n..(p + 1) * n];
                for (cv, bv) in crow.iter_mut().zip(brow.iter()) {
                    *cv += aval * bv;
                }
            }
        }
    });
}

/// `C[m,n] += A[m,k] · B[n,k]ᵀ` — i.e. rows of `B` are dotted against rows
/// of `A`. Inner loop is a dot product over contiguous memory in both
/// operands.
pub fn gemm_nt(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(c.len(), m * n);
    for_row_blocks(m, n, k * n, c, |rows, chunk| {
        for (ci, i) in rows.enumerate() {
            let arow = &a[i * k..(i + 1) * k];
            let crow = &mut chunk[ci * n..(ci + 1) * n];
            for (j, cv) in crow.iter_mut().enumerate() {
                let brow = &b[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (av, bv) in arow.iter().zip(brow.iter()) {
                    acc += av * bv;
                }
                *cv += acc;
            }
        }
    });
}

/// `C[m,n] += A[k,m]ᵀ · B[k,n]`.
pub fn gemm_tn(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    // Parallel split over output rows is awkward here (A is walked
    // column-wise), so split over row blocks but iterate p outermost
    // inside each block for contiguous access to B and C.
    for_row_blocks(m, n, k * n, c, |rows, chunk| {
        let row0 = rows.start;
        for p in 0..k {
            let brow = &b[p * n..(p + 1) * n];
            for i in rows.clone() {
                let aval = a[p * m + i];
                if aval == 0.0 {
                    continue;
                }
                let crow = &mut chunk[(i - row0) * n..(i - row0 + 1) * n];
                for (cv, bv) in crow.iter_mut().zip(brow.iter()) {
                    *cv += aval * bv;
                }
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_nn(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                for p in 0..k {
                    c[i * n + j] += a[i * k + p] * b[p * n + j];
                }
            }
        }
        c
    }

    fn rand_vec(n: usize, seed: u64) -> Vec<f32> {
        crate::Tensor::randn(&[n], seed).into_data()
    }

    fn assert_close(a: &[f32], b: &[f32]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn nn_matches_naive_small() {
        let (m, k, n) = (3, 4, 5);
        let a = rand_vec(m * k, 1);
        let b = rand_vec(k * n, 2);
        let mut c = vec![0.0; m * n];
        gemm_nn(&a, &b, &mut c, m, k, n);
        assert_close(&c, &naive_nn(&a, &b, m, k, n));
    }

    #[test]
    fn nn_matches_naive_large_parallel() {
        // Large enough to cross PAR_THRESHOLD and exercise the threaded path.
        let (m, k, n) = (97, 64, 130);
        let a = rand_vec(m * k, 3);
        let b = rand_vec(k * n, 4);
        let mut c = vec![0.0; m * n];
        gemm_nn(&a, &b, &mut c, m, k, n);
        assert_close(&c, &naive_nn(&a, &b, m, k, n));
    }

    #[test]
    fn nn_accumulates_into_c() {
        let (m, k, n) = (2, 2, 2);
        let a = vec![1.0, 0.0, 0.0, 1.0]; // identity
        let b = vec![5.0, 6.0, 7.0, 8.0];
        let mut c = vec![1.0; 4];
        gemm_nn(&a, &b, &mut c, m, k, n);
        assert_close(&c, &[6.0, 7.0, 8.0, 9.0]);
    }

    #[test]
    fn nt_matches_transposed_naive() {
        let (m, k, n) = (6, 7, 5);
        let a = rand_vec(m * k, 5);
        let bt = rand_vec(n * k, 6); // B stored as [n, k]
                                     // Reference: build B=[k,n] from bt and run naive.
        let mut b = vec![0.0; k * n];
        for j in 0..n {
            for p in 0..k {
                b[p * n + j] = bt[j * k + p];
            }
        }
        let mut c = vec![0.0; m * n];
        gemm_nt(&a, &bt, &mut c, m, k, n);
        assert_close(&c, &naive_nn(&a, &b, m, k, n));
    }

    #[test]
    fn tn_matches_transposed_naive() {
        let (m, k, n) = (5, 8, 4);
        let at = rand_vec(k * m, 7); // A stored as [k, m]
        let b = rand_vec(k * n, 8);
        let mut a = vec![0.0; m * k];
        for p in 0..k {
            for i in 0..m {
                a[i * k + p] = at[p * m + i];
            }
        }
        let mut c = vec![0.0; m * n];
        gemm_tn(&at, &b, &mut c, m, k, n);
        assert_close(&c, &naive_nn(&a, &b, m, k, n));
    }

    #[test]
    fn tn_large_parallel_path() {
        let (m, k, n) = (80, 70, 90);
        let at = rand_vec(k * m, 9);
        let b = rand_vec(k * n, 10);
        let mut a = vec![0.0; m * k];
        for p in 0..k {
            for i in 0..m {
                a[i * k + p] = at[p * m + i];
            }
        }
        let mut c1 = vec![0.0; m * n];
        gemm_tn(&at, &b, &mut c1, m, k, n);
        assert_close(&c1, &naive_nn(&a, &b, m, k, n));
    }

    #[test]
    fn degenerate_dims_are_fine() {
        let mut c = vec![0.0; 0];
        gemm_nn(&[], &[], &mut c, 0, 0, 0);
        let a = vec![2.0];
        let b = vec![3.0];
        let mut c = vec![0.0];
        gemm_nn(&a, &b, &mut c, 1, 1, 1);
        assert_eq!(c, vec![6.0]);
    }
}
