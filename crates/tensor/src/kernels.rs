//! Matrix-multiplication and attention kernels.
//!
//! One register-blocked, cache-tiled GEMM engine ([`gemm_core`]) serves
//! every layout the tape needs:
//!
//! * `gemm_nn`: `C += A[m,k] · B[k,n]`
//! * `gemm_nt`: `C += A[m,k] · B[n,k]ᵀ`   (gradient w.r.t. the left operand)
//! * `gemm_tn`: `C += A[k,m]ᵀ · B[k,n]`   (gradient w.r.t. the right operand)
//!
//! plus `_strided` variants taking explicit leading dimensions, which let
//! the attention kernels ([`attn_scores`], [`attn_context`],
//! [`attn_context_t`]) multiply head-interleaved `[B, T, H, dh]` views
//! directly — no `Kᵀ` or head-transpose copies are ever materialized.
//!
//! # Kernel design
//!
//! The engine is a scaled-down BLIS: the innermost unit is an
//! [`MR`]`×`[`NR`] *microkernel* whose accumulator tile lives in
//! registers across the whole depth loop, fed by *packed* operand
//! panels:
//!
//! * B is packed once per `k`-block into `[KC × NR]` column panels
//!   (shared read-only by all row threads), so the microkernel streams
//!   it contiguously regardless of the source layout or stride;
//! * A is packed per `[MC]`-row block into `[KC × MR]` micro-panels,
//!   turning both `nn` (rows) and `tn` (columns) sources into the same
//!   contiguous broadcast-friendly layout;
//! * the depth dimension is blocked by [`KC`] so packed panels stay
//!   cache-resident; within a row block, the column-panel loop runs
//!   outermost so each B panel is L1-hot across all micro-rows.
//!
//! Packing converts `nt`'s dot-product inner loop (a reduction rustc
//! cannot vectorize under strict f32 semantics) into the same
//! independent-lane FMA form as `nn`, and there is deliberately no
//! zero-skip branch anywhere: dense activations autovectorize, and a
//! data-dependent branch in the inner loop would defeat that.
//!
//! # Determinism
//!
//! Every output element accumulates its `k` products in ascending `p`
//! order, grouped only by the fixed [`KC`] blocking — an order that does
//! not depend on the row split, the thread count, or partial-tile
//! boundaries. Work above [`PAR_THRESHOLD`] FLOPs is divided over row
//! blocks on scoped std threads exactly as before, and results stay
//! bit-identical at any thread count.

use std::cell::{Cell, RefCell};
use std::ops::Range;

/// Minimum multiply-accumulate count before spawning threads; below this
/// the spawn overhead dominates.
pub const PAR_THRESHOLD: usize = 1 << 18;

/// Microkernel rows: accumulator tile height (distinct A values held as
/// broadcasts per depth step).
pub const MR: usize = 4;
/// Microkernel columns: accumulator tile width. `MR × NR = 64` f32
/// accumulators are 8 × 256-bit registers on AVX2 (the dispatched fast
/// path — see [`micro_fn`]), leaving room for the A broadcast and B
/// loads; the baseline-SSE2 fallback spills some but stays correct.
pub const NR: usize = 16;
/// Depth blocking: packed panels cover at most `KC` of `k` per pass, so
/// a B column panel (`KC × NR` = 8 KiB) stays L1-resident.
pub const KC: usize = 256;
/// Row blocking: A is packed `MC` rows at a time (`MC × KC` = 64 KiB,
/// L2-resident and streamed once per column panel).
pub const MC: usize = 64;

std::thread_local! {
    /// When set, kernels on this thread never spawn row-block threads.
    /// The data-parallel trainer sets it on its workers: parallelism
    /// then comes from microbatch shards, and nesting gemm threads
    /// underneath would oversubscribe the cores.
    static SEQUENTIAL: Cell<bool> = const { Cell::new(false) };
    /// Reusable packing buffers (per thread, so row-block workers and
    /// trainer shards never contend): B panels for the current k-block,
    /// A micro-panels for the current row block.
    static BPACK: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
    static APACK: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

#[cfg(test)]
std::thread_local! {
    /// Test hook: force a row-split thread count so the chunked path is
    /// exercised (and proven bit-identical) even on single-core hosts.
    static FORCE_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// Run `f` with this thread's kernels forced sequential (restored on
/// exit, panic included). Results are bit-identical either way — the
/// row partition assigns every output element to exactly one thread
/// with an unchanged inner loop — so this is purely a scheduling knob.
pub fn with_sequential<R>(f: impl FnOnce() -> R) -> R {
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            SEQUENTIAL.with(|s| s.set(self.0));
        }
    }
    let _restore = Restore(SEQUENTIAL.with(|s| s.replace(true)));
    f()
}

fn par_rows(m: usize, work_per_row: usize) -> usize {
    #[cfg(test)]
    {
        let forced = FORCE_THREADS.with(|f| f.get());
        if forced > 0 {
            return forced.min(m).max(1);
        }
    }
    let total = m * work_per_row;
    if total < PAR_THRESHOLD || SEQUENTIAL.with(|s| s.get()) {
        return 1;
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    cores.min(m).max(1)
}

/// Run `body(row_range, c_chunk)` over `m` rows of a C whose rows are
/// `ldc` apart (`n` live columns each), in parallel when profitable.
/// `c_chunk[0]` is the first element of row `row_range.start`.
fn for_row_blocks<F>(m: usize, n: usize, ldc: usize, work_per_row: usize, c: &mut [f32], body: F)
where
    F: Fn(Range<usize>, &mut [f32]) + Sync,
{
    debug_assert!(n <= ldc || m <= 1, "row chunks would overlap");
    let threads = par_rows(m, work_per_row);
    if threads <= 1 {
        body(0..m, c);
        return;
    }
    let rows_per = m.div_ceil(threads);
    std::thread::scope(|s| {
        let mut rest = c;
        let mut consumed = 0usize;
        let mut start = 0usize;
        while start < m {
            let rows = rows_per.min(m - start);
            // Rows start..start+rows occupy [start*ldc, (start+rows-1)*ldc + n):
            // chunks are disjoint ascending because n <= ldc.
            let end = (start + rows - 1) * ldc + n;
            let (head, tail) = rest.split_at_mut(end - consumed);
            let chunk = &mut head[start * ldc - consumed..];
            rest = tail;
            consumed = end;
            let range = start..start + rows;
            let body = &body;
            s.spawn(move || body(range, chunk));
            start += rows;
        }
    });
}

/// The register-resident core: `acc[r][j] += apanel[p][r] * bpanel[p][j]`
/// over `kc` depth steps. Panels are contiguous (packed), so every load
/// is sequential and the accumulator tile never leaves registers.
#[inline(always)]
fn micro_impl(kc: usize, apanel: &[f32], bpanel: &[f32], acc: &mut [[f32; NR]; MR]) {
    // Dynamic complement to the SAFETY comments (lint R1): the packed
    // panels must cover all kc depth steps, or chunks_exact would
    // silently truncate the accumulation. Free in release builds.
    debug_assert!(
        apanel.len() >= kc * MR,
        "A panel shorter than kc depth steps"
    );
    debug_assert!(
        bpanel.len() >= kc * NR,
        "B panel shorter than kc depth steps"
    );
    // Accumulate into a by-value local: with no live pointer to it, the
    // tile provably stays in registers and is stored exactly once.
    let mut local = [[0.0f32; NR]; MR];
    for (av, bv) in apanel
        .chunks_exact(MR)
        .zip(bpanel.chunks_exact(NR))
        .take(kc)
    {
        for r in 0..MR {
            let ar = av[r];
            for j in 0..NR {
                local[r][j] += ar * bv[j];
            }
        }
    }
    *acc = local;
}

/// Microkernel compiled for the build's baseline target features.
///
/// # Safety
/// Always safe to call; `unsafe fn` only to share a signature with the
/// feature-gated variants behind one dispatched pointer.
unsafe fn micro_baseline(kc: usize, apanel: &[f32], bpanel: &[f32], acc: &mut [[f32; NR]; MR]) {
    micro_impl(kc, apanel, bpanel, acc);
}

/// The same microkernel recompiled with AVX2 enabled, so LLVM
/// autovectorizes the [`NR`]-wide lanes as 256-bit `vmulps`/`vaddps`.
/// Rust never contracts `a * b + c` into an FMA, so this executes the
/// exact same IEEE operation sequence as [`micro_baseline`] — the
/// dispatch can change throughput, never a bit of output.
///
/// # Safety
/// Caller must have verified AVX2 support (see [`micro_fn`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn micro_avx2(kc: usize, apanel: &[f32], bpanel: &[f32], acc: &mut [[f32; NR]; MR]) {
    micro_impl(kc, apanel, bpanel, acc);
}

type MicroFn = unsafe fn(usize, &[f32], &[f32], &mut [[f32; NR]; MR]);

/// Pick the widest microkernel this CPU supports, once per process.
fn micro_fn() -> MicroFn {
    static MICRO: std::sync::OnceLock<MicroFn> = std::sync::OnceLock::new();
    *MICRO.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        if is_x86_feature_detected!("avx2") {
            return micro_avx2 as MicroFn;
        }
        micro_baseline as MicroFn
    })
}

/// Pack B depth-rows `pc..pc+kc` into `[kc × NR]` column panels
/// (tail panel zero-padded; `out` must be pre-zeroed and hold at least
/// `n.div_ceil(NR) * kc * NR`). `(p, j)` of the logical `B[k, n]` lives
/// at `b[p * brs + j * bcs]`, which covers both `nn`/`tn` (`bcs == 1`)
/// and `nt` (`brs == 1`, `bcs == ldb`) sources.
fn pack_b(b: &[f32], brs: usize, bcs: usize, pc: usize, kc: usize, n: usize, out: &mut [f32]) {
    let n_panels = n.div_ceil(NR);
    // Entry bounds checks (compiled out in release): the destination
    // must hold every zero-padded panel and the source must cover the
    // last element this depth block reads.
    debug_assert!(
        out.len() >= n_panels * kc * NR,
        "pack_b destination too short"
    );
    debug_assert!(
        kc == 0 || n == 0 || b.len() > (pc + kc - 1) * brs + (n - 1) * bcs,
        "pack_b source too short for depth block"
    );
    for jp in 0..n_panels {
        let j0 = jp * NR;
        let jw = NR.min(n - j0);
        let panel = &mut out[jp * kc * NR..(jp + 1) * kc * NR];
        if bcs == 1 {
            for p in 0..kc {
                let src = (pc + p) * brs + j0;
                panel[p * NR..p * NR + jw].copy_from_slice(&b[src..src + jw]);
            }
        } else if brs == 1 {
            // Transposed source (`nt`): each logical column is a
            // contiguous source row — read it sequentially, scatter into
            // the (cache-resident) panel.
            for jj in 0..jw {
                let src = &b[(j0 + jj) * bcs + pc..][..kc];
                for (p, &v) in src.iter().enumerate() {
                    panel[p * NR + jj] = v;
                }
            }
        } else {
            for p in 0..kc {
                let src = (pc + p) * brs + j0 * bcs;
                for jj in 0..jw {
                    panel[p * NR + jj] = b[src + jj * bcs];
                }
            }
        }
    }
}

/// Pack A rows `ic..ic+mc`, depth `pc..pc+kc`, into `[kc × MR]`
/// micro-panels at `out` (micro-panel-major; pad rows pre-zeroed by the
/// caller). `(i, p)` of the logical `A[m, k]` lives at
/// `a[i * ars + p * acs]`. Both layouts are packed in a single pass in
/// *source* memory order — the `tn` case in particular reads each depth
/// row of A exactly once instead of restriding per micro-panel.
#[allow(clippy::too_many_arguments)] // GEMM kernels take the full (dims, strides, panels) contract flat
fn pack_a_block(
    a: &[f32],
    ars: usize,
    acs: usize,
    ic: usize,
    mc: usize,
    pc: usize,
    kc: usize,
    out: &mut [f32],
) {
    // Entry bounds checks (compiled out in release): every micro-panel
    // this block writes must fit, and the furthest source element read
    // — row ic+mc-1 at depth pc+kc-1 — must exist.
    debug_assert!(
        out.len() >= mc.div_ceil(MR) * kc * MR,
        "pack_a destination too short"
    );
    debug_assert!(
        mc == 0 || kc == 0 || a.len() > (ic + mc - 1) * ars + (pc + kc - 1) * acs,
        "pack_a source too short for row/depth block"
    );
    if acs == 1 {
        // Row-major A (nn/nt): each source row is contiguous in p.
        for r in 0..mc {
            let src = &a[(ic + r) * ars + pc..][..kc];
            let panel = &mut out[(r / MR) * kc * MR..][..kc * MR];
            let lane = r % MR;
            for (p, &v) in src.iter().enumerate() {
                panel[p * MR + lane] = v;
            }
        }
    } else {
        // Column-source A (tn, ars == 1): each depth step is a
        // contiguous run of mc source elements. Fixed-size micro-copies
        // compile to plain vector moves (a dynamic length here becomes
        // a memcpy call per 16-byte chunk).
        let full = mc - mc % MR;
        for p in 0..kc {
            let src = &a[(pc + p) * acs + ic..][..mc];
            for (ip, chunk) in src[..full].chunks_exact(MR).enumerate() {
                let chunk: &[f32; MR] = chunk.try_into().unwrap();
                out[ip * kc * MR + p * MR..][..MR].copy_from_slice(chunk);
            }
            for (r, &v) in src[full..].iter().enumerate() {
                out[(full / MR) * kc * MR + p * MR + r] = v;
            }
        }
    }
}

/// Strided GEMM core: `C[i*ldc + j] += Σ_p A(i,p) · B(p,j)` where the
/// operand layouts are described by stride pairs (see [`pack_b`] /
/// [`pack_a_block`]). All public gemm entry points funnel here.
///
/// Every KC depth block of B is packed up front, then one thread scope
/// covers the entire product: each row worker walks the depth blocks
/// itself, so a multi-block `k` pays a single spawn/join instead of one
/// barrier (with a serialized re-pack) per block. The per-element
/// accumulation order — ascending `pc`, then ascending `p` within the
/// block — is unchanged.
#[allow(clippy::too_many_arguments)] // GEMM kernels take the full (dims, strides, panels) contract flat
fn gemm_core(
    a: &[f32],
    ars: usize,
    acs: usize,
    b: &[f32],
    brs: usize,
    bcs: usize,
    c: &mut [f32],
    ldc: usize,
    m: usize,
    k: usize,
    n: usize,
) {
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    // One counter at the funnel covers every public gemm entry point.
    ntt_obs::counter!("tensor.gemm_calls").inc();
    debug_assert!(a.len() > (m - 1) * ars + (k - 1) * acs, "A too short");
    debug_assert!(b.len() > (k - 1) * brs + (n - 1) * bcs, "B too short");
    debug_assert!(c.len() >= (m - 1) * ldc + n, "C too short");
    let n_panels = n.div_ceil(NR);
    let n_blocks = k.div_ceil(KC);
    // Fixed per-block stride (sized for a full KC block); the tail
    // block simply leaves its region partially used. Panels *within* a
    // block are `kc * NR` apart, matching `gemm_row_block`'s indexing.
    let block_stride = n_panels * KC * NR;
    BPACK.with(|bp| {
        let mut bp = bp.borrow_mut();
        bp.clear();
        bp.resize(n_blocks * block_stride, 0.0);
        for (bi, pc) in (0..k).step_by(KC).enumerate() {
            let kc = KC.min(k - pc);
            pack_b(b, brs, bcs, pc, kc, n, &mut bp[bi * block_stride..]);
        }
        let bp = &*bp;
        for_row_blocks(m, n, ldc, k * n, c, |rows, chunk| {
            for (bi, pc) in (0..k).step_by(KC).enumerate() {
                let kc = KC.min(k - pc);
                gemm_row_block(
                    a,
                    ars,
                    acs,
                    &bp[bi * block_stride..],
                    chunk,
                    ldc,
                    rows.clone(),
                    pc,
                    kc,
                    n,
                    n_panels,
                );
            }
        });
    });
}

/// One thread's share of [`gemm_core`]: rows `rows` of C (chunk-relative,
/// stride `ldc`) against the packed B panels for depth block `pc..pc+kc`.
#[allow(clippy::too_many_arguments)] // GEMM kernels take the full (dims, strides, panels) contract flat
fn gemm_row_block(
    a: &[f32],
    ars: usize,
    acs: usize,
    bpack: &[f32],
    c: &mut [f32],
    ldc: usize,
    rows: Range<usize>,
    pc: usize,
    kc: usize,
    n: usize,
    n_panels: usize,
) {
    APACK.with(|ap| {
        let mut ap = ap.borrow_mut();
        let row0 = rows.start;
        let mut ic = rows.start;
        while ic < rows.end {
            let mc = MC.min(rows.end - ic);
            let mp = mc.div_ceil(MR);
            ap.clear();
            ap.resize(mp * kc * MR, 0.0);
            pack_a_block(a, ars, acs, ic, mc, pc, kc, &mut ap);
            // Column panels outermost: each B panel stays L1-hot across
            // every micro-row of this MC block.
            let micro = micro_fn();
            for jp in 0..n_panels {
                let j0 = jp * NR;
                let jw = NR.min(n - j0);
                let bpanel = &bpack[jp * kc * NR..(jp + 1) * kc * NR];
                for ip in 0..mp {
                    let i0 = ic + ip * MR;
                    let iw = MR.min(rows.end - i0);
                    let apanel = &ap[ip * kc * MR..(ip + 1) * kc * MR];
                    let mut acc = [[0.0f32; NR]; MR];
                    // SAFETY: micro_fn verified the required CPU features.
                    unsafe { micro(kc, apanel, bpanel, &mut acc) };
                    for r in 0..iw {
                        let crow = &mut c[(i0 + r - row0) * ldc + j0..][..jw];
                        for (cv, av) in crow.iter_mut().zip(acc[r].iter()) {
                            *cv += av;
                        }
                    }
                }
            }
            ic += mc;
        }
    });
}

/// `C[m,n] += A[m,k] · B[k,n]`.
pub fn gemm_nn(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    gemm_core(a, k, 1, b, n, 1, c, n, m, k, n);
}

/// [`gemm_nn`] over strided views: `A` rows are `lda` apart, `B` rows
/// `ldb` apart, `C` rows `ldc` apart.
#[allow(clippy::too_many_arguments)] // GEMM kernels take the full (dims, strides, panels) contract flat
pub fn gemm_nn_strided(
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    c: &mut [f32],
    ldc: usize,
    m: usize,
    k: usize,
    n: usize,
) {
    gemm_core(a, lda, 1, b, ldb, 1, c, ldc, m, k, n);
}

/// `C[m,n] += A[m,k] · B[n,k]ᵀ` — rows of `B` are dotted against rows
/// of `A`. Packing transposes `B` into column panels, so the inner loop
/// is the same independent-lane FMA form as `nn` (a plain dot-product
/// loop is a reduction rustc will not vectorize under strict f32).
pub fn gemm_nt(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(c.len(), m * n);
    gemm_core(a, k, 1, b, 1, k, c, n, m, k, n);
}

/// [`gemm_nt`] over strided views (`B` stored `[n, k]` with rows `ldb`
/// apart).
#[allow(clippy::too_many_arguments)] // GEMM kernels take the full (dims, strides, panels) contract flat
pub fn gemm_nt_strided(
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    c: &mut [f32],
    ldc: usize,
    m: usize,
    k: usize,
    n: usize,
) {
    gemm_core(a, lda, 1, b, 1, ldb, c, ldc, m, k, n);
}

/// `C[m,n] += A[k,m]ᵀ · B[k,n]`.
pub fn gemm_tn(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    gemm_core(a, 1, m, b, n, 1, c, n, m, k, n);
}

/// [`gemm_tn`] over strided views (`A` stored `[k, m]` with rows `lda`
/// apart).
#[allow(clippy::too_many_arguments)] // GEMM kernels take the full (dims, strides, panels) contract flat
pub fn gemm_tn_strided(
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    c: &mut [f32],
    ldc: usize,
    m: usize,
    k: usize,
    n: usize,
) {
    gemm_core(a, 1, lda, b, ldb, 1, c, ldc, m, k, n);
}

// ---------------------------------------------------------------------------
// Attention products over head-interleaved [B, T, H, dh] layouts.
//
// Q/K/V stay exactly as the per-head reshape of the projection output —
// `[B, T, H, dh]` row-major — and every product below reads them through
// a row stride of `h * dh`. Nothing is transposed or copied.
// ---------------------------------------------------------------------------

/// `scores[b,h,i,j] += Σ_d q[b,i,h,d] · k[b,j,h,d]` — the `Q·Kᵀ` of
/// every head, from `[B, T, H, dh]` views into `[B, H, T, T]`.
pub fn attn_scores(
    q: &[f32],
    k: &[f32],
    scores: &mut [f32],
    b: usize,
    t: usize,
    h: usize,
    dh: usize,
) {
    debug_assert_eq!(q.len(), b * t * h * dh);
    debug_assert_eq!(k.len(), b * t * h * dh);
    debug_assert_eq!(scores.len(), b * h * t * t);
    if b * t * h * dh == 0 {
        return;
    }
    let hd = h * dh;
    for bi in 0..b {
        for hi in 0..h {
            let qo = bi * t * hd + hi * dh;
            let so = (bi * h + hi) * t * t;
            gemm_nt_strided(
                &q[qo..],
                hd,
                &k[qo..],
                hd,
                &mut scores[so..so + t * t],
                t,
                t,
                dh,
                t,
            );
        }
    }
}

/// `ctx[b,i,h,d] += Σ_j w[b,h,i,j] · v[b,j,h,d]` — attention-weighted
/// values, written straight back into `[B, T, H, dh]` layout (so the
/// head merge is a plain reshape). Also the gradient `dQ = G · K` of
/// [`attn_scores`] when called as `attn_context(g, k, dq, ..)`.
pub fn attn_context(
    w: &[f32],
    v: &[f32],
    ctx: &mut [f32],
    b: usize,
    t: usize,
    h: usize,
    dh: usize,
) {
    debug_assert_eq!(w.len(), b * h * t * t);
    debug_assert_eq!(v.len(), b * t * h * dh);
    debug_assert_eq!(ctx.len(), b * t * h * dh);
    if b * t * h * dh == 0 {
        return;
    }
    let hd = h * dh;
    for bi in 0..b {
        for hi in 0..h {
            let wo = (bi * h + hi) * t * t;
            let vo = bi * t * hd + hi * dh;
            gemm_nn_strided(
                &w[wo..wo + t * t],
                t,
                &v[vo..],
                hd,
                &mut ctx[vo..],
                hd,
                t,
                t,
                dh,
            );
        }
    }
}

/// `out[b,j,h,d] += Σ_i w[b,h,i,j] · x[b,i,h,d]` — the transposed
/// counterpart of [`attn_context`], covering the remaining attention
/// gradients: `dK = Gᵀ · Q` and `dV = Wᵀ · G_ctx`.
pub fn attn_context_t(
    w: &[f32],
    x: &[f32],
    out: &mut [f32],
    b: usize,
    t: usize,
    h: usize,
    dh: usize,
) {
    debug_assert_eq!(w.len(), b * h * t * t);
    debug_assert_eq!(x.len(), b * t * h * dh);
    debug_assert_eq!(out.len(), b * t * h * dh);
    if b * t * h * dh == 0 {
        return;
    }
    let hd = h * dh;
    for bi in 0..b {
        for hi in 0..h {
            let wo = (bi * h + hi) * t * t;
            let xo = bi * t * hd + hi * dh;
            gemm_tn_strided(
                &w[wo..wo + t * t],
                t,
                &x[xo..],
                hd,
                &mut out[xo..],
                hd,
                t,
                t,
                dh,
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Fused softmax.
// ---------------------------------------------------------------------------

/// Fused `out = softmax(scale * x)` over rows of width `d`, numerically
/// stabilized. One kernel replaces the previous `scale` op (a full
/// tensor materialization and tape node) plus the separate softmax.
pub fn scaled_softmax_fwd(x: &[f32], scale: f32, d: usize, out: &mut [f32]) {
    assert!(d > 0, "softmax over empty axis");
    debug_assert_eq!(x.len(), out.len());
    debug_assert_eq!(x.len() % d, 0);
    for (row, orow) in x.chunks_exact(d).zip(out.chunks_exact_mut(d)) {
        let mut mx = f32::NEG_INFINITY;
        for &v in row {
            mx = mx.max(scale * v);
        }
        let mut sum = 0.0f32;
        for (o, &v) in orow.iter_mut().zip(row.iter()) {
            let e = (scale * v - mx).exp();
            *o = e;
            sum += e;
        }
        let inv = 1.0 / sum;
        for o in orow.iter_mut() {
            *o *= inv;
        }
    }
}

/// Softmax backward in one pass over the rows: given `y = softmax(scale·x)`
/// and upstream `g`, writes `gx = scale · y ⊙ (g − ⟨y, g⟩)` without any
/// intermediate tensor. Used by both the fused scaled softmax
/// (`scale = 1/√dh`) and the plain softmax op (`scale = 1`).
pub fn softmax_bwd(y: &[f32], g: &[f32], scale: f32, d: usize, gx: &mut [f32]) {
    debug_assert_eq!(y.len(), g.len());
    debug_assert_eq!(y.len(), gx.len());
    debug_assert_eq!(y.len() % d.max(1), 0);
    for ((ys, gs), gxs) in y
        .chunks_exact(d)
        .zip(g.chunks_exact(d))
        .zip(gx.chunks_exact_mut(d))
    {
        let mut dot = 0.0f32;
        for (&yv, &gv) in ys.iter().zip(gs.iter()) {
            dot += yv * gv;
        }
        for ((o, &yv), &gv) in gxs.iter_mut().zip(ys.iter()).zip(gs.iter()) {
            *o = scale * (yv * (gv - dot));
        }
    }
}

// ---------------------------------------------------------------------------
// Fused streaming-softmax attention (flash-attention style).
//
// `attn_fused_fwd` computes `softmax(scale · Q·Kᵀ) · V` per `(b, h)`
// without ever materializing the `[B, H, T, T]` score matrix: for each
// MR-row tile of queries it walks NR-wide key panels, computes the
// score tile with the same packed microkernel as the GEMM engine, and
// folds it into a running (max, sum, context) triple — the online
// softmax. The context accumulator is rescaled by
// `exp(m_old − m_new)` whenever a panel raises the running max, and
// divided by the final sum once per row. Peak extra memory per thread
// is the packed K panels (`T × dh` floats) plus an `MR × dh` context
// tile — independent of `T²`.
//
// Determinism: panels and row tiles are walked in fixed ascending
// order, and threads split only the batch dimension (each `bi` is an
// independent, contiguous slice of every operand), so results are
// bit-identical across thread counts and batch compositions. The
// online rescaling *does* reorder the IEEE sequence relative to the
// classic `attn_scores → scaled_softmax → attn_context` chain, so
// fused-vs-classic equality is epsilon-level, not bitwise — by design.
// ---------------------------------------------------------------------------

std::thread_local! {
    /// Fused-attention packing/accumulator scratch, separate from
    /// BPACK/APACK so a fused call can never clobber an enclosing
    /// gemm's panels. Capacity is retained across calls: steady-state
    /// serving does not allocate here.
    static FUSED_KPACK: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
    static FUSED_QPACK: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
    static FUSED_ROW: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
    static FUSED_D: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// Per-row softmax statistics saved by [`attn_fused_fwd`] for the
/// backward pass: `(running max, exp-sum)` pairs, laid out `[B, H, T, 2]`.
pub const FUSED_STATS_PER_ROW: usize = 2;

/// Fused attention forward: `ctx[b,i,h,:] = softmax_j(scale · q_i·k_j) · V`
/// over `[B, T, H, dh]` views, overwriting `ctx` (same layout). When
/// `stats` is `Some`, the per-row `(max, sum)` pairs are written to it
/// (`[B, H, T, 2]`) so the backward can recompute score tiles exactly.
#[allow(clippy::too_many_arguments)] // GEMM kernels take the full (dims, strides, panels) contract flat
pub fn attn_fused_fwd(
    q: &[f32],
    k: &[f32],
    v: &[f32],
    scale: f32,
    ctx: &mut [f32],
    stats: Option<&mut [f32]>,
    b: usize,
    t: usize,
    h: usize,
    dh: usize,
) {
    debug_assert_eq!(q.len(), b * t * h * dh);
    debug_assert_eq!(k.len(), b * t * h * dh);
    debug_assert_eq!(v.len(), b * t * h * dh);
    debug_assert_eq!(ctx.len(), b * t * h * dh);
    if let Some(st) = stats.as_deref() {
        debug_assert_eq!(st.len(), b * h * t * FUSED_STATS_PER_ROW);
    }
    if b == 0 || t == 0 || h == 0 {
        return;
    }
    ntt_obs::counter!("tensor.attn_fused_calls").inc();
    let hd = h * dh;
    // Scores + context flops per batch row; the same threshold heuristic
    // as the GEMM engine decides whether threads pay for themselves.
    let threads = par_rows(b, 2 * h * t * t * dh.max(1));
    if threads <= 1 {
        fused_fwd_rows(q, k, v, scale, ctx, stats, 0..b, t, h, dh);
        return;
    }
    let rows_per = b.div_ceil(threads);
    std::thread::scope(|s| {
        let mut ctx_rest = ctx;
        let mut stats_rest = stats;
        let mut start = 0usize;
        while start < b {
            let rows = rows_per.min(b - start);
            let (ctx_chunk, ctx_tail) = ctx_rest.split_at_mut(rows * t * hd);
            ctx_rest = ctx_tail;
            let stats_chunk = match stats_rest.take() {
                Some(st) => {
                    let (head, tail) = st.split_at_mut(rows * h * t * FUSED_STATS_PER_ROW);
                    stats_rest = Some(tail);
                    Some(head)
                }
                None => None,
            };
            let range = start..start + rows;
            s.spawn(move || {
                fused_fwd_rows(q, k, v, scale, ctx_chunk, stats_chunk, range, t, h, dh)
            });
            start += rows;
        }
    });
}

/// Pack the K rows of one `(b, h)` slice (`k_sub` starting at that
/// head's first element, row stride `hd`) into NR-column panels, KC
/// depth blocks — exactly the layout [`gemm_core`] feeds the
/// microkernel. Returns the per-block stride.
fn fused_pack_k(k_sub: &[f32], hd: usize, t: usize, dh: usize, out: &mut Vec<f32>) -> usize {
    let n_panels = t.div_ceil(NR);
    let n_blocks = dh.div_ceil(KC);
    let block_stride = n_panels * KC * NR;
    out.clear();
    out.resize(n_blocks * block_stride, 0.0);
    for (blk, pc) in (0..dh).step_by(KC).enumerate() {
        let kc = KC.min(dh - pc);
        // Logical B[p, j] = k_sub[j * hd + p]: a transposed (`nt`)
        // source, so each key row is read contiguously.
        pack_b(k_sub, 1, hd, pc, kc, t, &mut out[blk * block_stride..]);
    }
    block_stride
}

/// Pack one MR-row tile of Q (`rows ic..ic+mc` of `q_sub`, row stride
/// `hd`) into per-depth-block micro-panels of fixed `KC × MR` stride.
fn fused_pack_q(q_sub: &[f32], hd: usize, ic: usize, mc: usize, dh: usize, out: &mut Vec<f32>) {
    let n_blocks = dh.div_ceil(KC).max(1);
    out.clear();
    out.resize(n_blocks * KC * MR, 0.0);
    for (blk, pc) in (0..dh).step_by(KC).enumerate() {
        let kc = KC.min(dh - pc);
        pack_a_block(
            q_sub,
            hd,
            1,
            ic,
            mc,
            pc,
            kc,
            &mut out[blk * KC * MR..][..kc * MR],
        );
    }
}

/// One `Q·Kᵀ` score tile: MR query rows × NR key columns, summed over
/// the KC depth blocks (the microkernel overwrites its accumulator, so
/// multi-block depths are added here — same ascending-`pc` order as the
/// GEMM engine).
fn fused_score_tile(
    qpack: &[f32],
    kpack: &[f32],
    block_stride: usize,
    jp: usize,
    dh: usize,
) -> [[f32; NR]; MR] {
    let micro = micro_fn();
    let mut stile = [[0.0f32; NR]; MR];
    for (blk, pc) in (0..dh).step_by(KC).enumerate() {
        let kc = KC.min(dh - pc);
        let qpanel = &qpack[blk * KC * MR..][..kc * MR];
        let kpanel = &kpack[blk * block_stride + jp * kc * NR..][..kc * NR];
        let mut acc = [[0.0f32; NR]; MR];
        // SAFETY: micro_fn verified the required CPU features.
        unsafe { micro(kc, qpanel, kpanel, &mut acc) };
        for r in 0..MR {
            for j in 0..NR {
                stile[r][j] += acc[r][j];
            }
        }
    }
    stile
}

/// One thread's share of [`attn_fused_fwd`]: batch rows `range`, with
/// `ctx_chunk`/`stats_chunk` starting at row `range.start`.
#[allow(clippy::too_many_arguments)] // GEMM kernels take the full (dims, strides, panels) contract flat
fn fused_fwd_rows(
    q: &[f32],
    k: &[f32],
    v: &[f32],
    scale: f32,
    ctx_chunk: &mut [f32],
    mut stats_chunk: Option<&mut [f32]>,
    range: Range<usize>,
    t: usize,
    h: usize,
    dh: usize,
) {
    let hd = h * dh;
    let n_panels = t.div_ceil(NR);
    FUSED_KPACK.with(|kp| {
        FUSED_QPACK.with(|qp| {
            FUSED_ROW.with(|rowbuf| {
                let kp = &mut *kp.borrow_mut();
                let qp = &mut *qp.borrow_mut();
                let acc = &mut *rowbuf.borrow_mut();
                for bi in range.clone() {
                    for hi in 0..h {
                        let base = bi * t * hd + hi * dh;
                        let block_stride = fused_pack_k(&k[base..], hd, t, dh, kp);
                        let mut ic = 0usize;
                        while ic < t {
                            let mc = MR.min(t - ic);
                            fused_pack_q(&q[base..], hd, ic, mc, dh, qp);
                            let mut mrow = [f32::NEG_INFINITY; MR];
                            let mut lrow = [0.0f32; MR];
                            acc.clear();
                            acc.resize(MR * dh, 0.0);
                            for jp in 0..n_panels {
                                let j0 = jp * NR;
                                let jw = NR.min(t - j0);
                                let stile = fused_score_tile(qp, kp, block_stride, jp, dh);
                                for r in 0..mc {
                                    // Only the jw live lanes enter the
                                    // softmax: zero-padded tails never
                                    // contribute an exp term.
                                    let mut mnew = mrow[r];
                                    for &s in &stile[r][..jw] {
                                        mnew = mnew.max(scale * s);
                                    }
                                    // First panel: mrow is -inf, so
                                    // corr = exp(-inf) = 0 and the
                                    // (all-zero) accumulator is wiped.
                                    let corr = (mrow[r] - mnew).exp();
                                    mrow[r] = mnew;
                                    let mut e = [0.0f32; NR];
                                    let mut lsum = 0.0f32;
                                    for (ej, &s) in e[..jw].iter_mut().zip(&stile[r][..jw]) {
                                        *ej = (scale * s - mnew).exp();
                                        lsum += *ej;
                                    }
                                    lrow[r] = lrow[r] * corr + lsum;
                                    let acc_row = &mut acc[r * dh..(r + 1) * dh];
                                    for a in acc_row.iter_mut() {
                                        *a *= corr;
                                    }
                                    for (j, &ej) in e[..jw].iter().enumerate() {
                                        let vrow = &v[base + (j0 + j) * hd..][..dh];
                                        for (a, &vd) in acc_row.iter_mut().zip(vrow) {
                                            *a += ej * vd;
                                        }
                                    }
                                }
                            }
                            for r in 0..mc {
                                let i = ic + r;
                                let inv = 1.0 / lrow[r];
                                let off = ((bi - range.start) * t + i) * hd + hi * dh;
                                for (dst, &a) in
                                    ctx_chunk[off..off + dh].iter_mut().zip(&acc[r * dh..])
                                {
                                    *dst = a * inv;
                                }
                                if let Some(st) = stats_chunk.as_deref_mut() {
                                    let so = (((bi - range.start) * h + hi) * t + i)
                                        * FUSED_STATS_PER_ROW;
                                    st[so] = mrow[r];
                                    st[so + 1] = lrow[r];
                                }
                            }
                            ic += mc;
                        }
                    }
                }
            });
        });
    });
}

/// Fused attention backward: given the forward inputs, output `o`,
/// upstream gradient `g` (all `[B, T, H, dh]`) and the saved softmax
/// stats (`[B, H, T, 2]`), accumulates `dQ`, `dK`, `dV` into
/// `gq`/`gk`/`gv` (`+=`, matching the other backward kernels). Score
/// tiles are recomputed on the fly with the same packed microkernel and
/// tile order as the forward — the probabilities are bit-identical to
/// the ones the forward folded in, and nothing `T²`-sized is allocated.
#[allow(clippy::too_many_arguments)] // GEMM kernels take the full (dims, strides, panels) contract flat
pub fn attn_fused_bwd(
    q: &[f32],
    k: &[f32],
    v: &[f32],
    g: &[f32],
    o: &[f32],
    stats: &[f32],
    scale: f32,
    gq: &mut [f32],
    gk: &mut [f32],
    gv: &mut [f32],
    b: usize,
    t: usize,
    h: usize,
    dh: usize,
) {
    debug_assert_eq!(q.len(), b * t * h * dh);
    debug_assert_eq!(g.len(), b * t * h * dh);
    debug_assert_eq!(o.len(), b * t * h * dh);
    debug_assert_eq!(stats.len(), b * h * t * FUSED_STATS_PER_ROW);
    if b == 0 || t == 0 || h == 0 {
        return;
    }
    let hd = h * dh;
    let threads = par_rows(b, 5 * h * t * t * dh.max(1));
    if threads <= 1 {
        fused_bwd_rows(q, k, v, g, o, stats, scale, gq, gk, gv, 0..b, t, h, dh);
        return;
    }
    let rows_per = b.div_ceil(threads);
    std::thread::scope(|s| {
        let (mut gq_rest, mut gk_rest, mut gv_rest) = (gq, gk, gv);
        let mut start = 0usize;
        while start < b {
            let rows = rows_per.min(b - start);
            let (gq_chunk, gq_tail) = gq_rest.split_at_mut(rows * t * hd);
            let (gk_chunk, gk_tail) = gk_rest.split_at_mut(rows * t * hd);
            let (gv_chunk, gv_tail) = gv_rest.split_at_mut(rows * t * hd);
            gq_rest = gq_tail;
            gk_rest = gk_tail;
            gv_rest = gv_tail;
            let range = start..start + rows;
            s.spawn(move || {
                fused_bwd_rows(
                    q, k, v, g, o, stats, scale, gq_chunk, gk_chunk, gv_chunk, range, t, h, dh,
                );
            });
            start += rows;
        }
    });
}

/// One thread's share of [`attn_fused_bwd`]: batch rows `range`, grad
/// chunks starting at row `range.start`.
#[allow(clippy::too_many_arguments)] // GEMM kernels take the full (dims, strides, panels) contract flat
fn fused_bwd_rows(
    q: &[f32],
    k: &[f32],
    v: &[f32],
    g: &[f32],
    o: &[f32],
    stats: &[f32],
    scale: f32,
    gq_chunk: &mut [f32],
    gk_chunk: &mut [f32],
    gv_chunk: &mut [f32],
    range: Range<usize>,
    t: usize,
    h: usize,
    dh: usize,
) {
    let hd = h * dh;
    let n_panels = t.div_ceil(NR);
    FUSED_KPACK.with(|kp| {
        FUSED_QPACK.with(|qp| {
            FUSED_ROW.with(|rowbuf| {
                FUSED_D.with(|dbuf| {
                    let kp = &mut *kp.borrow_mut();
                    let qp = &mut *qp.borrow_mut();
                    let gqacc = &mut *rowbuf.borrow_mut();
                    let dvec = &mut *dbuf.borrow_mut();
                    for bi in range.clone() {
                        for hi in 0..h {
                            let base = bi * t * hd + hi * dh;
                            let rel = (bi - range.start) * t * hd + hi * dh;
                            // D_i = ⟨dO_i, O_i⟩ — the softmax-row dot
                            // term, precomputed once per (b, h).
                            dvec.clear();
                            dvec.resize(t, 0.0);
                            for (i, d) in dvec.iter_mut().enumerate() {
                                let grow = &g[base + i * hd..][..dh];
                                let orow = &o[base + i * hd..][..dh];
                                for (&gd, &od) in grow.iter().zip(orow) {
                                    *d += gd * od;
                                }
                            }
                            let block_stride = fused_pack_k(&k[base..], hd, t, dh, kp);
                            let mut ic = 0usize;
                            while ic < t {
                                let mc = MR.min(t - ic);
                                fused_pack_q(&q[base..], hd, ic, mc, dh, qp);
                                gqacc.clear();
                                gqacc.resize(MR * dh, 0.0);
                                for jp in 0..n_panels {
                                    let j0 = jp * NR;
                                    let jw = NR.min(t - j0);
                                    let stile = fused_score_tile(qp, kp, block_stride, jp, dh);
                                    for r in 0..mc {
                                        let i = ic + r;
                                        let so = ((bi * h + hi) * t + i) * FUSED_STATS_PER_ROW;
                                        let (mi, li) = (stats[so], stats[so + 1]);
                                        let inv_l = 1.0 / li;
                                        let grow = &g[base + i * hd..][..dh];
                                        let qrow = &q[base + i * hd..][..dh];
                                        let di = dvec[i];
                                        let gqrow = &mut gqacc[r * dh..(r + 1) * dh];
                                        for (j, &s) in stile[r][..jw].iter().enumerate() {
                                            let jj = j0 + j;
                                            let krow = &k[base + jj * hd..][..dh];
                                            let vrow = &v[base + jj * hd..][..dh];
                                            // P_ij from the recomputed
                                            // score and saved stats.
                                            let p = (scale * s - mi).exp() * inv_l;
                                            let mut dp = 0.0f32;
                                            for (&gd, &vd) in grow.iter().zip(vrow) {
                                                dp += gd * vd;
                                            }
                                            let ds = scale * p * (dp - di);
                                            for (a, &kd) in gqrow.iter_mut().zip(krow) {
                                                *a += ds * kd;
                                            }
                                            let goff = rel + jj * hd;
                                            for (a, &qd) in
                                                gk_chunk[goff..goff + dh].iter_mut().zip(qrow)
                                            {
                                                *a += ds * qd;
                                            }
                                            for (a, &gd) in
                                                gv_chunk[goff..goff + dh].iter_mut().zip(grow)
                                            {
                                                *a += p * gd;
                                            }
                                        }
                                    }
                                }
                                for r in 0..mc {
                                    let off = rel + (ic + r) * hd;
                                    for (dst, &a) in
                                        gq_chunk[off..off + dh].iter_mut().zip(&gqacc[r * dh..])
                                    {
                                        *dst += a;
                                    }
                                }
                                ic += mc;
                            }
                        }
                    }
                });
            });
        });
    });
}

/// Naive triple-loop reference kernels: the ground truth the tiled
/// engine is proptested against, and the baseline the `kernels` bench
/// measures its GFLOP/s floor from. Deliberately unblocked and
/// unpacked — do not "optimize" these.
pub mod reference {
    /// `C[m,n] += A[m,k] · B[k,n]`, i-j-k order.
    pub fn gemm_nn(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += a[i * k + p] * b[p * n + j];
                }
                c[i * n + j] += acc;
            }
        }
    }

    /// `C[m,n] += A[m,k] · B[n,k]ᵀ`.
    pub fn gemm_nt(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += a[i * k + p] * b[j * k + p];
                }
                c[i * n + j] += acc;
            }
        }
    }

    /// `C[m,n] += A[k,m]ᵀ · B[k,n]`.
    pub fn gemm_tn(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += a[p * m + i] * b[p * n + j];
                }
                c[i * n + j] += acc;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_nn(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0; m * n];
        reference::gemm_nn(a, b, &mut c, m, k, n);
        c
    }

    fn rand_vec(n: usize, seed: u64) -> Vec<f32> {
        crate::Tensor::randn(&[n], seed).into_data()
    }

    fn assert_close(a: &[f32], b: &[f32]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    fn with_forced_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
        FORCE_THREADS.with(|t| t.set(threads));
        let r = f();
        FORCE_THREADS.with(|t| t.set(0));
        r
    }

    #[test]
    fn nn_matches_naive_small() {
        let (m, k, n) = (3, 4, 5);
        let a = rand_vec(m * k, 1);
        let b = rand_vec(k * n, 2);
        let mut c = vec![0.0; m * n];
        gemm_nn(&a, &b, &mut c, m, k, n);
        assert_close(&c, &naive_nn(&a, &b, m, k, n));
    }

    #[test]
    fn nn_matches_naive_large_parallel() {
        // Larger than every tile dimension, odd in every axis, and run
        // with a forced row split to exercise the threaded path.
        let (m, k, n) = (97, 300, 130);
        let a = rand_vec(m * k, 3);
        let b = rand_vec(k * n, 4);
        let mut c = vec![0.0; m * n];
        with_forced_threads(3, || gemm_nn(&a, &b, &mut c, m, k, n));
        assert_close(&c, &naive_nn(&a, &b, m, k, n));
    }

    #[test]
    fn row_split_is_bit_identical() {
        // The determinism contract behind `with_sequential`: the thread
        // count must not change a single bit, in any layout.
        let (m, k, n) = (53, 67, 41);
        type Kernel = fn(&[f32], &[f32], &mut [f32], usize, usize, usize);
        let cases: [(&str, Kernel, usize, usize); 3] = [
            ("nn", gemm_nn, m * k, k * n),
            ("nt", gemm_nt, m * k, n * k),
            ("tn", gemm_tn, k * m, k * n),
        ];
        for (name, run, alen, blen) in cases {
            let a = rand_vec(alen, 11);
            let b = rand_vec(blen, 12);
            for threads in [2, 3, 7] {
                let mut c1 = vec![0.0; m * n];
                run(&a, &b, &mut c1, m, k, n);
                let mut c2 = vec![0.0; m * n];
                with_forced_threads(threads, || run(&a, &b, &mut c2, m, k, n));
                assert_eq!(
                    c1, c2,
                    "{name}: thread count changed bits ({threads} threads)"
                );
            }
        }
    }

    #[test]
    fn nn_accumulates_into_c() {
        let (m, k, n) = (2, 2, 2);
        let a = vec![1.0, 0.0, 0.0, 1.0]; // identity
        let b = vec![5.0, 6.0, 7.0, 8.0];
        let mut c = vec![1.0; 4];
        gemm_nn(&a, &b, &mut c, m, k, n);
        assert_close(&c, &[6.0, 7.0, 8.0, 9.0]);
    }

    #[test]
    fn nt_matches_transposed_naive() {
        let (m, k, n) = (6, 7, 5);
        let a = rand_vec(m * k, 5);
        let bt = rand_vec(n * k, 6); // B stored as [n, k]
                                     // Reference: build B=[k,n] from bt and run naive.
        let mut b = vec![0.0; k * n];
        for j in 0..n {
            for p in 0..k {
                b[p * n + j] = bt[j * k + p];
            }
        }
        let mut c = vec![0.0; m * n];
        gemm_nt(&a, &bt, &mut c, m, k, n);
        assert_close(&c, &naive_nn(&a, &b, m, k, n));
    }

    #[test]
    fn tn_matches_transposed_naive() {
        let (m, k, n) = (5, 8, 4);
        let at = rand_vec(k * m, 7); // A stored as [k, m]
        let b = rand_vec(k * n, 8);
        let mut a = vec![0.0; m * k];
        for p in 0..k {
            for i in 0..m {
                a[i * k + p] = at[p * m + i];
            }
        }
        let mut c = vec![0.0; m * n];
        gemm_tn(&at, &b, &mut c, m, k, n);
        assert_close(&c, &naive_nn(&a, &b, m, k, n));
    }

    #[test]
    fn tn_large_parallel_path() {
        let (m, k, n) = (80, 270, 90);
        let at = rand_vec(k * m, 9);
        let b = rand_vec(k * n, 10);
        let mut a = vec![0.0; m * k];
        for p in 0..k {
            for i in 0..m {
                a[i * k + p] = at[p * m + i];
            }
        }
        let mut c1 = vec![0.0; m * n];
        with_forced_threads(4, || gemm_tn(&at, &b, &mut c1, m, k, n));
        assert_close(&c1, &naive_nn(&a, &b, m, k, n));
    }

    #[test]
    fn strided_views_match_dense() {
        // Embed a [5, 6] A and [6, 7] B inside wider buffers and check
        // the strided entry points against the dense ones.
        let (m, k, n) = (5usize, 6, 7);
        let (lda, ldb, ldc) = (k + 3, n + 2, n + 4);
        let a = rand_vec(m * lda, 21);
        let b = rand_vec(k * ldb, 22);
        let dense_a: Vec<f32> = (0..m * k).map(|i| a[(i / k) * lda + i % k]).collect();
        let dense_b: Vec<f32> = (0..k * n).map(|i| b[(i / n) * ldb + i % n]).collect();
        let mut c = vec![0.0; (m - 1) * ldc + n];
        gemm_nn_strided(&a, lda, &b, ldb, &mut c, ldc, m, k, n);
        let want = naive_nn(&dense_a, &dense_b, m, k, n);
        for i in 0..m {
            for j in 0..n {
                assert!((c[i * ldc + j] - want[i * n + j]).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn attn_kernels_match_transpose_reference() {
        let (b, t, h, dh) = (2usize, 5, 3, 4);
        let q = rand_vec(b * t * h * dh, 31);
        let k = rand_vec(b * t * h * dh, 32);
        let v = rand_vec(b * t * h * dh, 33);
        let mut scores = vec![0.0; b * h * t * t];
        attn_scores(&q, &k, &mut scores, b, t, h, dh);
        let idx = |bi: usize, ti: usize, hi: usize, d: usize| ((bi * t + ti) * h + hi) * dh + d;
        for bi in 0..b {
            for hi in 0..h {
                for i in 0..t {
                    for j in 0..t {
                        let mut want = 0.0f32;
                        for d in 0..dh {
                            want += q[idx(bi, i, hi, d)] * k[idx(bi, j, hi, d)];
                        }
                        let got = scores[((bi * h + hi) * t + i) * t + j];
                        assert!((got - want).abs() < 1e-4, "scores {got} vs {want}");
                    }
                }
            }
        }
        let mut ctx = vec![0.0; b * t * h * dh];
        attn_context(&scores, &v, &mut ctx, b, t, h, dh);
        let mut ctx_t = vec![0.0; b * t * h * dh];
        attn_context_t(&scores, &v, &mut ctx_t, b, t, h, dh);
        for bi in 0..b {
            for hi in 0..h {
                for i in 0..t {
                    for d in 0..dh {
                        let (mut want, mut want_t) = (0.0f32, 0.0f32);
                        for j in 0..t {
                            want += scores[((bi * h + hi) * t + i) * t + j] * v[idx(bi, j, hi, d)];
                            want_t +=
                                scores[((bi * h + hi) * t + j) * t + i] * v[idx(bi, j, hi, d)];
                        }
                        assert!((ctx[idx(bi, i, hi, d)] - want).abs() < 1e-3);
                        assert!((ctx_t[idx(bi, i, hi, d)] - want_t).abs() < 1e-3);
                    }
                }
            }
        }
    }

    #[test]
    fn scaled_softmax_rows_are_distributions() {
        let x = rand_vec(6 * 9, 41);
        let mut y = vec![0.0; x.len()];
        scaled_softmax_fwd(&x, 0.5, 9, &mut y);
        for row in y.chunks(9) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert!(row.iter().all(|&p| p > 0.0));
        }
    }

    #[test]
    fn softmax_bwd_matches_formula() {
        let y = vec![0.2f32, 0.3, 0.5, 0.6, 0.1, 0.3];
        let g = vec![1.0f32, -1.0, 0.5, 0.0, 2.0, 1.0];
        let mut gx = vec![0.0; 6];
        softmax_bwd(&y, &g, 2.0, 3, &mut gx);
        for r in 0..2 {
            let ys = &y[r * 3..r * 3 + 3];
            let gs = &g[r * 3..r * 3 + 3];
            let dot: f32 = ys.iter().zip(gs).map(|(a, b)| a * b).sum();
            for j in 0..3 {
                let want = 2.0 * ys[j] * (gs[j] - dot);
                assert!((gx[r * 3 + j] - want).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn degenerate_dims_are_fine() {
        let mut c = vec![0.0; 0];
        gemm_nn(&[], &[], &mut c, 0, 0, 0);
        let a = vec![2.0];
        let b = vec![3.0];
        let mut c = vec![0.0];
        gemm_nn(&a, &b, &mut c, 1, 1, 1);
        assert_eq!(c, vec![6.0]);
        attn_scores(&[], &[], &mut [], 0, 0, 2, 0);
        scaled_softmax_fwd(&[], 1.0, 3, &mut []);
        attn_fused_fwd(&[], &[], &[], 1.0, &mut [], None, 0, 3, 2, 4);
    }

    /// The classic three-kernel chain the fused path replaces.
    #[allow(clippy::too_many_arguments)]
    fn classic_attention(
        q: &[f32],
        k: &[f32],
        v: &[f32],
        scale: f32,
        b: usize,
        t: usize,
        h: usize,
        dh: usize,
    ) -> (Vec<f32>, Vec<f32>) {
        let mut scores = vec![0.0; b * h * t * t];
        attn_scores(q, k, &mut scores, b, t, h, dh);
        let mut w = vec![0.0; b * h * t * t];
        scaled_softmax_fwd(&scores, scale, t, &mut w);
        let mut ctx = vec![0.0; b * t * h * dh];
        attn_context(&w, v, &mut ctx, b, t, h, dh);
        (ctx, w)
    }

    #[test]
    fn fused_attention_matches_classic_chain() {
        // Shapes straddling every tile boundary: t below/at/above NR,
        // t = 1, primes, and dh not a multiple of anything.
        for (b, t, h, dh) in [
            (1usize, 1usize, 1usize, 3usize),
            (2, 5, 3, 4),
            (1, 15, 2, 7),
            (1, 16, 1, 8),
            (2, 17, 2, 5),
            (1, 31, 1, 16),
            (1, 48, 4, 16),
        ] {
            let n = b * t * h * dh;
            let q = rand_vec(n, 51);
            let k = rand_vec(n, 52);
            let v = rand_vec(n, 53);
            let scale = 1.0 / (dh as f32).sqrt();
            let (want, _) = classic_attention(&q, &k, &v, scale, b, t, h, dh);
            let mut got = vec![f32::NAN; n];
            let mut stats = vec![f32::NAN; b * h * t * FUSED_STATS_PER_ROW];
            attn_fused_fwd(&q, &k, &v, scale, &mut got, Some(&mut stats), b, t, h, dh);
            for (x, y) in got.iter().zip(&want) {
                assert!(
                    (x - y).abs() < 1e-5,
                    "fused {x} vs classic {y} at (b={b},t={t},h={h},dh={dh})"
                );
            }
            // Stats must be fully written and finite (l >= 1: the max
            // element always contributes exp(0) = 1).
            for pair in stats.chunks(2) {
                assert!(pair[0].is_finite());
                assert!(pair[1] >= 1.0);
            }
        }
    }

    #[test]
    fn fused_attention_is_bit_identical_across_threads() {
        // Threads split only the batch dimension; the per-(b,h) tile
        // walk is fixed — so any forced split must reproduce the
        // sequential bits exactly.
        let (b, t, h, dh) = (5usize, 17, 3, 8);
        let n = b * t * h * dh;
        let q = rand_vec(n, 61);
        let k = rand_vec(n, 62);
        let v = rand_vec(n, 63);
        let mut base = vec![0.0; n];
        let mut base_stats = vec![0.0; b * h * t * FUSED_STATS_PER_ROW];
        attn_fused_fwd(
            &q,
            &k,
            &v,
            0.5,
            &mut base,
            Some(&mut base_stats),
            b,
            t,
            h,
            dh,
        );
        for threads in [2, 3, 7] {
            let mut ctx = vec![0.0; n];
            let mut stats = vec![0.0; b * h * t * FUSED_STATS_PER_ROW];
            with_forced_threads(threads, || {
                attn_fused_fwd(&q, &k, &v, 0.5, &mut ctx, Some(&mut stats), b, t, h, dh);
            });
            assert_eq!(base, ctx, "fwd bits changed at {threads} threads");
            assert_eq!(base_stats, stats, "stats bits changed at {threads} threads");
        }
    }

    #[test]
    fn fused_attention_is_batch_composition_invariant() {
        // Window w's context must be bit-identical whether it rides in
        // a batch of 4 or alone — each batch row is an independent,
        // identically-ordered computation.
        let (b, t, h, dh) = (4usize, 13, 2, 6);
        let n = b * t * h * dh;
        let q = rand_vec(n, 71);
        let k = rand_vec(n, 72);
        let v = rand_vec(n, 73);
        let mut batched = vec![0.0; n];
        attn_fused_fwd(&q, &k, &v, 0.3, &mut batched, None, b, t, h, dh);
        let per = t * h * dh;
        for bi in 0..b {
            let mut solo = vec![0.0; per];
            attn_fused_fwd(
                &q[bi * per..][..per],
                &k[bi * per..][..per],
                &v[bi * per..][..per],
                0.3,
                &mut solo,
                None,
                1,
                t,
                h,
                dh,
            );
            assert_eq!(
                &batched[bi * per..][..per],
                &solo[..],
                "window {bi} bits differ"
            );
        }
    }

    #[test]
    fn fused_backward_matches_classic_chain_backward() {
        for (b, t, h, dh) in [
            (1usize, 1usize, 1usize, 3usize),
            (2, 17, 2, 5),
            (1, 20, 3, 4),
        ] {
            let n = b * t * h * dh;
            let q = rand_vec(n, 81);
            let k = rand_vec(n, 82);
            let v = rand_vec(n, 83);
            let g = rand_vec(n, 84);
            let scale = 1.0 / (dh as f32).sqrt();

            // Classic chain gradients, composed from the existing
            // kernels: dV = Wᵀ·G, dW[i,j] = ⟨g_i, v_j⟩, dS via
            // softmax_bwd, dQ = dS·K, dK = dSᵀ·Q.
            let (_, w) = classic_attention(&q, &k, &v, scale, b, t, h, dh);
            let mut want_gv = vec![0.0; n];
            attn_context_t(&w, &g, &mut want_gv, b, t, h, dh);
            let mut dw = vec![0.0; b * h * t * t];
            attn_scores(&g, &v, &mut dw, b, t, h, dh);
            let mut ds = vec![0.0; b * h * t * t];
            softmax_bwd(&w, &dw, scale, t, &mut ds);
            let mut want_gq = vec![0.0; n];
            attn_context(&ds, &k, &mut want_gq, b, t, h, dh);
            let mut want_gk = vec![0.0; n];
            attn_context_t(&ds, &q, &mut want_gk, b, t, h, dh);

            let mut ctx = vec![0.0; n];
            let mut stats = vec![0.0; b * h * t * FUSED_STATS_PER_ROW];
            attn_fused_fwd(&q, &k, &v, scale, &mut ctx, Some(&mut stats), b, t, h, dh);
            let (mut gq, mut gk, mut gv) = (vec![0.0; n], vec![0.0; n], vec![0.0; n]);
            attn_fused_bwd(
                &q, &k, &v, &g, &ctx, &stats, scale, &mut gq, &mut gk, &mut gv, b, t, h, dh,
            );
            for (name, got, want) in [
                ("gq", &gq, &want_gq),
                ("gk", &gk, &want_gk),
                ("gv", &gv, &want_gv),
            ] {
                for (x, y) in got.iter().zip(want.iter()) {
                    assert!(
                        (x - y).abs() < 1e-4,
                        "{name}: fused {x} vs classic {y} (b={b},t={t},h={h},dh={dh})"
                    );
                }
            }
        }
    }

    #[test]
    fn fused_backward_is_bit_identical_across_threads() {
        let (b, t, h, dh) = (5usize, 11, 2, 7);
        let n = b * t * h * dh;
        let q = rand_vec(n, 91);
        let k = rand_vec(n, 92);
        let v = rand_vec(n, 93);
        let g = rand_vec(n, 94);
        let mut ctx = vec![0.0; n];
        let mut stats = vec![0.0; b * h * t * FUSED_STATS_PER_ROW];
        attn_fused_fwd(&q, &k, &v, 0.4, &mut ctx, Some(&mut stats), b, t, h, dh);
        let run = |threads: usize| {
            let (mut gq, mut gk, mut gv) = (vec![0.0; n], vec![0.0; n], vec![0.0; n]);
            let mut go = || {
                attn_fused_bwd(
                    &q, &k, &v, &g, &ctx, &stats, 0.4, &mut gq, &mut gk, &mut gv, b, t, h, dh,
                )
            };
            if threads == 0 {
                go();
            } else {
                with_forced_threads(threads, go);
            }
            (gq, gk, gv)
        };
        let base = run(0);
        for threads in [2, 3, 7] {
            assert_eq!(base, run(threads), "bwd bits changed at {threads} threads");
        }
    }
}
