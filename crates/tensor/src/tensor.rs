//! Dense row-major `f32` tensor.
//!
//! `Tensor` is the plain value type used throughout the workspace: the
//! simulator produces feature tensors, the tape records them, optimizers
//! mutate them. It owns a contiguous `Vec<f32>` and a dimension list; all
//! views are materialized (no stride tricks), which keeps every code path
//! simple and predictable — the smoltcp philosophy of robustness over
//! cleverness.

use crate::shape;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// A dense, row-major, heap-allocated `f32` tensor.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Vec<usize>,
}

impl Tensor {
    /// Build a tensor from raw data and a shape. Panics if sizes disagree.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        assert_eq!(
            data.len(),
            shape::numel(shape),
            "data length {} does not match shape {:?}",
            data.len(),
            shape
        );
        Self {
            data,
            shape: shape.to_vec(),
        }
    }

    /// A single-element tensor (shape `[1]`) holding `v`.
    pub fn scalar(v: f32) -> Self {
        Self::from_vec(vec![v], &[1])
    }

    /// All-zeros tensor.
    pub fn zeros(shape: &[usize]) -> Self {
        Self {
            data: vec![0.0; shape::numel(shape)],
            shape: shape.to_vec(),
        }
    }

    /// All-ones tensor.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// Constant-filled tensor.
    pub fn full(shape: &[usize], v: f32) -> Self {
        Self {
            data: vec![v; shape::numel(shape)],
            shape: shape.to_vec(),
        }
    }

    /// `[0, 1, 2, ...]` as a 1-D tensor of length `n`.
    pub fn arange(n: usize) -> Self {
        Self::from_vec((0..n).map(|i| i as f32).collect(), &[n])
    }

    /// Standard-normal samples (Box-Muller), deterministic in `seed`.
    pub fn randn(shape: &[usize], seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = shape::numel(shape);
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen();
            let r = (-2.0 * u1.ln()).sqrt();
            let t = 2.0 * std::f32::consts::PI * u2;
            data.push(r * t.cos());
            if data.len() < n {
                data.push(r * t.sin());
            }
        }
        Self::from_vec(data, shape)
    }

    /// Uniform samples in `[lo, hi)`, deterministic in `seed`.
    pub fn uniform(shape: &[usize], lo: f32, hi: f32, seed: u64) -> Self {
        assert!(lo < hi, "uniform requires lo < hi");
        let mut rng = StdRng::seed_from_u64(seed);
        let n = shape::numel(shape);
        let data = (0..n).map(|_| rng.gen_range(lo..hi)).collect();
        Self::from_vec(data, shape)
    }

    /// Dimension list.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Total element count.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Read-only view of the flat row-major buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat row-major buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the tensor, returning its flat buffer.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-dimensional index.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[shape::offset(&self.shape, index)]
    }

    /// Set the element at a multi-dimensional index.
    pub fn set(&mut self, index: &[usize], v: f32) {
        let off = shape::offset(&self.shape, index);
        self.data[off] = v;
    }

    /// The value of a single-element tensor. Panics otherwise.
    pub fn item(&self) -> f32 {
        assert_eq!(self.numel(), 1, "item() requires exactly one element");
        self.data[0]
    }

    /// Same data, new shape (must preserve element count).
    pub fn reshape(&self, new_shape: &[usize]) -> Tensor {
        shape::check_reshape(&self.shape, new_shape);
        Tensor {
            data: self.data.clone(),
            shape: new_shape.to_vec(),
        }
    }

    /// Elementwise map into a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            data: self.data.iter().map(|&x| f(x)).collect(),
            shape: self.shape.clone(),
        }
    }

    /// Elementwise combine with an equally-shaped tensor.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(
            self.shape, other.shape,
            "zip requires identical shapes ({:?} vs {:?})",
            self.shape, other.shape
        );
        Tensor {
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
            shape: self.shape.clone(),
        }
    }

    /// In-place `self += other` (identical shapes).
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// In-place scale.
    pub fn scale_assign(&mut self, c: f32) {
        for a in self.data.iter_mut() {
            *a *= c;
        }
    }

    /// Fill with zeros, keeping the allocation.
    pub fn zero_(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Sum of all elements (f64 accumulator for stability).
    pub fn sum(&self) -> f32 {
        self.data.iter().map(|&x| x as f64).sum::<f64>() as f32
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        assert!(self.numel() > 0, "mean of empty tensor");
        self.sum() / self.numel() as f32
    }

    /// Maximum element (NaN-ignoring would hide bugs; NaN propagates).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element.
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// L2 norm.
    pub fn norm(&self) -> f32 {
        (self
            .data
            .iter()
            .map(|&x| (x as f64) * (x as f64))
            .sum::<f64>())
        .sqrt() as f32
    }

    /// True if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }

    /// Transpose of a rank-2 tensor.
    pub fn transpose2(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "transpose2 requires rank 2");
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor::from_vec(out, &[n, m])
    }

    /// Swap the last two dimensions of a rank >= 2 tensor
    /// (batched matrix transpose).
    pub fn transpose_last2(&self) -> Tensor {
        let (b, m, n) = shape::as_batched_matrix(&self.shape);
        let mut out = vec![0.0f32; b * m * n];
        for bi in 0..b {
            let src = &self.data[bi * m * n..(bi + 1) * m * n];
            let dst = &mut out[bi * m * n..(bi + 1) * m * n];
            for i in 0..m {
                for j in 0..n {
                    dst[j * m + i] = src[i * n + j];
                }
            }
        }
        let mut shape = self.shape.clone();
        let r = shape.len();
        shape.swap(r - 2, r - 1);
        Tensor::from_vec(out, &shape)
    }

    /// Swap axes 1 and 2 of a rank-4 tensor: `[A, B, C, D] -> [A, C, B, D]`.
    /// Used to regroup attention heads (`[B, T, H, dh] <-> [B, H, T, dh]`).
    pub fn transpose_axes_1_2(&self) -> Tensor {
        assert_eq!(self.rank(), 4, "transpose_axes_1_2 requires rank 4");
        let (a, b, c, d) = (self.shape[0], self.shape[1], self.shape[2], self.shape[3]);
        let mut out = vec![0.0f32; self.numel()];
        for ai in 0..a {
            for bi in 0..b {
                for ci in 0..c {
                    let src = ((ai * b + bi) * c + ci) * d;
                    let dst = ((ai * c + ci) * b + bi) * d;
                    out[dst..dst + d].copy_from_slice(&self.data[src..src + d]);
                }
            }
        }
        Tensor::from_vec(out, &[a, c, b, d])
    }

    /// Copy rows `[start, start+len)` along axis 1 of a rank-3 tensor.
    pub fn slice_axis1(&self, start: usize, len: usize) -> Tensor {
        assert_eq!(self.rank(), 3, "slice_axis1 requires rank 3");
        let (b, t, d) = (self.shape[0], self.shape[1], self.shape[2]);
        assert!(start + len <= t, "slice_axis1 out of range");
        let mut out = Vec::with_capacity(b * len * d);
        for bi in 0..b {
            let base = bi * t * d + start * d;
            out.extend_from_slice(&self.data[base..base + len * d]);
        }
        Tensor::from_vec(out, &[b, len, d])
    }

    /// Approximate equality within `tol` (absolute), same shape required.
    pub fn allclose(&self, other: &Tensor, tol: f32) -> bool {
        self.shape == other.shape
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(a, b)| (a - b).abs() <= tol)
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?} ", self.shape)?;
        if self.numel() <= 16 {
            write!(f, "{:?}", self.data)
        } else {
            write!(
                f,
                "[{:.4}, {:.4}, ... ; n={}, mean={:.4}]",
                self.data[0],
                self.data[1],
                self.numel(),
                self.mean()
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.rank(), 2);
        assert_eq!(t.numel(), 6);
        assert_eq!(t.at(&[1, 2]), 6.0);
        assert_eq!(t.at(&[0, 0]), 1.0);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_rejects_bad_length() {
        Tensor::from_vec(vec![1.0; 5], &[2, 3]);
    }

    #[test]
    fn zeros_ones_full() {
        assert_eq!(Tensor::zeros(&[3]).data(), &[0.0, 0.0, 0.0]);
        assert_eq!(Tensor::ones(&[2]).data(), &[1.0, 1.0]);
        assert_eq!(Tensor::full(&[2], 7.5).data(), &[7.5, 7.5]);
    }

    #[test]
    fn randn_is_deterministic_and_roughly_normal() {
        let a = Tensor::randn(&[10_000], 42);
        let b = Tensor::randn(&[10_000], 42);
        assert_eq!(a, b);
        let mean = a.mean();
        let var = a.data().iter().map(|x| (x - mean).powi(2)).sum::<f32>() / 10_000.0;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn uniform_respects_bounds_and_seed() {
        let a = Tensor::uniform(&[1000], -2.0, 3.0, 7);
        assert!(a.data().iter().all(|&x| (-2.0..3.0).contains(&x)));
        assert_eq!(a, Tensor::uniform(&[1000], -2.0, 3.0, 7));
        assert_ne!(a, Tensor::uniform(&[1000], -2.0, 3.0, 8));
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::arange(6).reshape(&[2, 3]);
        assert_eq!(t.at(&[1, 0]), 3.0);
        let back = t.reshape(&[6]);
        assert_eq!(back.data(), &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn map_zip_and_inplace() {
        let a = Tensor::from_vec(vec![1.0, -2.0], &[2]);
        let b = Tensor::from_vec(vec![10.0, 20.0], &[2]);
        assert_eq!(a.map(|x| x * 2.0).data(), &[2.0, -4.0]);
        assert_eq!(a.zip(&b, |x, y| x + y).data(), &[11.0, 18.0]);
        let mut c = a.clone();
        c.add_assign(&b);
        assert_eq!(c.data(), &[11.0, 18.0]);
        c.scale_assign(0.5);
        assert_eq!(c.data(), &[5.5, 9.0]);
        c.zero_();
        assert_eq!(c.data(), &[0.0, 0.0]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, -4.0], &[4]);
        assert_eq!(t.sum(), 2.0);
        assert_eq!(t.mean(), 0.5);
        assert_eq!(t.max(), 3.0);
        assert_eq!(t.min(), -4.0);
        assert!((t.norm() - (30.0f32).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn transpose2_roundtrip() {
        let t = Tensor::arange(6).reshape(&[2, 3]);
        let tt = t.transpose2();
        assert_eq!(tt.shape(), &[3, 2]);
        assert_eq!(tt.at(&[2, 1]), t.at(&[1, 2]));
        assert_eq!(tt.transpose2(), t);
    }

    #[test]
    fn transpose_last2_batched() {
        let t = Tensor::arange(24).reshape(&[2, 3, 4]);
        let tt = t.transpose_last2();
        assert_eq!(tt.shape(), &[2, 4, 3]);
        for b in 0..2 {
            for i in 0..3 {
                for j in 0..4 {
                    assert_eq!(tt.at(&[b, j, i]), t.at(&[b, i, j]));
                }
            }
        }
    }

    #[test]
    fn transpose_axes_1_2_regroups_heads() {
        let t = Tensor::arange(48).reshape(&[2, 3, 4, 2]);
        let s = t.transpose_axes_1_2();
        assert_eq!(s.shape(), &[2, 4, 3, 2]);
        for a in 0..2 {
            for b in 0..3 {
                for c in 0..4 {
                    for d in 0..2 {
                        assert_eq!(s.at(&[a, c, b, d]), t.at(&[a, b, c, d]));
                    }
                }
            }
        }
        assert_eq!(s.transpose_axes_1_2(), t);
    }

    #[test]
    fn slice_axis1_copies_rows() {
        let t = Tensor::arange(24).reshape(&[2, 4, 3]);
        let s = t.slice_axis1(1, 2);
        assert_eq!(s.shape(), &[2, 2, 3]);
        assert_eq!(s.at(&[0, 0, 0]), t.at(&[0, 1, 0]));
        assert_eq!(s.at(&[1, 1, 2]), t.at(&[1, 2, 2]));
    }

    #[test]
    fn non_finite_detection() {
        let mut t = Tensor::zeros(&[3]);
        assert!(!t.has_non_finite());
        t.set(&[1], f32::NAN);
        assert!(t.has_non_finite());
    }

    #[test]
    fn allclose_tolerates_small_differences() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![1.0 + 1e-7, 2.0 - 1e-7], &[2]);
        assert!(a.allclose(&b, 1e-6));
        assert!(!a.allclose(&b, 1e-9));
        assert!(!a.allclose(&Tensor::zeros(&[3]), 1.0));
    }
}
