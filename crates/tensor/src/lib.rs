//! # ntt-tensor
//!
//! Minimal dense-tensor and reverse-mode autodiff library: the PyTorch
//! substitute underpinning the Network Traffic Transformer reproduction
//! ("A New Hope for Network Model Generalization", HotNets '22).
//!
//! Everything is `f32`, row-major, and materialized — no lazy views, no
//! dtype zoo. The design optimizes for auditability: each tape op has a
//! hand-written backward rule validated against finite differences
//! ([`grad_check`]), and the matmul kernels ([`kernels`]) are the only
//! performance-tuned (blocked + threaded) code.
//!
//! ```
//! use ntt_tensor::{Param, Tape, Tensor};
//!
//! // One gradient step on w for loss = mean((x·w - y)^2).
//! let w = Param::new("w", Tensor::randn(&[3, 1], 0));
//! let x = Tensor::randn(&[8, 3], 1);
//! let y = Tensor::zeros(&[8, 1]);
//!
//! let tape = Tape::new();
//! let loss = tape.input(x).matmul(tape.param(&w)).mse_loss(&y);
//! tape.backward(loss);
//! w.update(|value, grad| {
//!     for (v, g) in value.data_mut().iter_mut().zip(grad.data()) {
//!         *v -= 0.1 * g;
//!     }
//! });
//! ```

pub mod grad_check;
pub mod kernels;
pub mod shape;

mod param;
mod tape;
#[allow(clippy::module_inception)] // the crate-defining module shares the crate name by convention
mod tensor;

pub use param::Param;
pub use tape::{splitmix64, Gradients, ParamGrads, Tape, TapePool, Var};
pub use tensor::Tensor;
