//! Property-based tests: the tiled, packed GEMM engine and the strided
//! attention kernels against the naive triple-loop references, across
//! odd and degenerate shapes (0, 1, primes, and sizes straddling every
//! tile boundary: MR=4, NR=16, MC=64, KC=256).

use ntt_tensor::kernels::{self, reference};
use ntt_tensor::Tensor;
use proptest::prelude::*;

/// Dimension menu mixing degenerate sizes, primes, tile-edge values,
/// and sizes larger than a whole tile in that axis.
const DIMS: [usize; 14] = [0, 1, 2, 3, 5, 7, 13, 15, 16, 17, 31, 64, 67, 130];

/// Depth menu including sizes beyond KC so k-blocking is exercised.
const KDIMS: [usize; 12] = [0, 1, 2, 3, 5, 13, 17, 63, 64, 65, 257, 300];

/// Sequence lengths straddling the fused tile edges: 1, primes, the
/// key-panel width NR=16 ± 1, the MR=4 row-tile edge, and the encoder's
/// 48-slot shape.
const TDIMS: [usize; 10] = [1, 2, 3, 5, 13, 15, 16, 17, 31, 48];

/// The unfused three-kernel chain (scores → scaled softmax → context);
/// returns (context, softmax weights) for backward composition.
#[allow(clippy::too_many_arguments)]
fn classic_attention(
    q: &[f32],
    k: &[f32],
    v: &[f32],
    scale: f32,
    b: usize,
    t: usize,
    h: usize,
    dh: usize,
) -> (Vec<f32>, Vec<f32>) {
    let mut scores = vec![0.0; b * h * t * t];
    kernels::attn_scores(q, k, &mut scores, b, t, h, dh);
    let mut weights = vec![0.0; b * h * t * t];
    kernels::scaled_softmax_fwd(&scores, scale, t, &mut weights);
    let mut ctx = vec![0.0; b * t * h * dh];
    kernels::attn_context(&weights, v, &mut ctx, b, t, h, dh);
    (ctx, weights)
}

fn rand_vec(n: usize, seed: u64) -> Vec<f32> {
    if n == 0 {
        Vec::new()
    } else {
        Tensor::randn(&[n], seed).into_data()
    }
}

fn assert_close(got: &[f32], want: &[f32], k: usize, label: &str) -> Result<(), TestCaseError> {
    prop_assert_eq!(got.len(), want.len());
    // Error scales with the dot-product length; randn values are O(1).
    let tol = 1e-4 * (k as f32 + 4.0);
    for (i, (x, y)) in got.iter().zip(want.iter()).enumerate() {
        prop_assert!((x - y).abs() <= tol, "{label}[{i}]: {x} vs {y} (tol {tol})");
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn tiled_nn_matches_reference(mi in 0usize..DIMS.len(), ki in 0usize..KDIMS.len(), ni in 0usize..DIMS.len(), seed in 0u64..1000) {
        let (m, k, n) = (DIMS[mi], KDIMS[ki], DIMS[ni]);
        let a = rand_vec(m * k, seed);
        let b = rand_vec(k * n, seed ^ 1);
        let mut got = vec![0.5; m * n]; // non-zero: accumulation must be preserved
        let mut want = vec![0.5; m * n];
        kernels::gemm_nn(&a, &b, &mut got, m, k, n);
        reference::gemm_nn(&a, &b, &mut want, m, k, n);
        assert_close(&got, &want, k, "nn")?;
    }

    #[test]
    fn tiled_nt_matches_reference(mi in 0usize..DIMS.len(), ki in 0usize..KDIMS.len(), ni in 0usize..DIMS.len(), seed in 0u64..1000) {
        let (m, k, n) = (DIMS[mi], KDIMS[ki], DIMS[ni]);
        let a = rand_vec(m * k, seed);
        let b = rand_vec(n * k, seed ^ 2);
        let mut got = vec![0.0; m * n];
        let mut want = vec![0.0; m * n];
        kernels::gemm_nt(&a, &b, &mut got, m, k, n);
        reference::gemm_nt(&a, &b, &mut want, m, k, n);
        assert_close(&got, &want, k, "nt")?;
    }

    #[test]
    fn tiled_tn_matches_reference(mi in 0usize..DIMS.len(), ki in 0usize..KDIMS.len(), ni in 0usize..DIMS.len(), seed in 0u64..1000) {
        let (m, k, n) = (DIMS[mi], KDIMS[ki], DIMS[ni]);
        let a = rand_vec(k * m, seed);
        let b = rand_vec(k * n, seed ^ 3);
        let mut got = vec![0.0; m * n];
        let mut want = vec![0.0; m * n];
        kernels::gemm_tn(&a, &b, &mut got, m, k, n);
        reference::gemm_tn(&a, &b, &mut want, m, k, n);
        assert_close(&got, &want, k, "tn")?;
    }

    #[test]
    fn strided_gemms_match_dense_submatrix(m in 1usize..9, k in 1usize..9, n in 1usize..9, pad in 1usize..5, seed in 0u64..500) {
        // Embed operands in wider buffers; strided entry points must see
        // exactly the submatrix the dense ones see.
        let (lda, ldb, ldc) = (k + pad, n + pad, n + pad + 1);
        let a = rand_vec(m * lda, seed);
        let b = rand_vec(k * ldb, seed ^ 5);
        let dense_a: Vec<f32> = (0..m * k).map(|i| a[(i / k) * lda + i % k]).collect();
        let dense_b: Vec<f32> = (0..k * n).map(|i| b[(i / n) * ldb + i % n]).collect();
        let mut want = vec![0.0; m * n];
        reference::gemm_nn(&dense_a, &dense_b, &mut want, m, k, n);
        let mut c = vec![0.0; (m - 1) * ldc + n];
        kernels::gemm_nn_strided(&a, lda, &b, ldb, &mut c, ldc, m, k, n);
        for i in 0..m {
            for j in 0..n {
                prop_assert!((c[i * ldc + j] - want[i * n + j]).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn attn_kernels_match_transpose_composition(b in 1usize..3, t in 1usize..8, h in 1usize..4, dhi in 0usize..4, seed in 0u64..500) {
        let dh = [1usize, 2, 5, 16][dhi];
        let q = rand_vec(b * t * h * dh, seed);
        let k = rand_vec(b * t * h * dh, seed ^ 7);
        let v = rand_vec(b * t * h * dh, seed ^ 8);
        let idx = |bi: usize, ti: usize, hi: usize, d: usize| ((bi * t + ti) * h + hi) * dh + d;

        let mut scores = vec![0.0; b * h * t * t];
        kernels::attn_scores(&q, &k, &mut scores, b, t, h, dh);
        for bi in 0..b {
            for hi in 0..h {
                for i in 0..t {
                    for j in 0..t {
                        let mut want = 0.0f32;
                        for d in 0..dh {
                            want += q[idx(bi, i, hi, d)] * k[idx(bi, j, hi, d)];
                        }
                        let got = scores[((bi * h + hi) * t + i) * t + j];
                        prop_assert!((got - want).abs() < 1e-3, "scores: {got} vs {want}");
                    }
                }
            }
        }

        let mut ctx = vec![0.0; b * t * h * dh];
        kernels::attn_context(&scores, &v, &mut ctx, b, t, h, dh);
        let mut ctx_t = vec![0.0; b * t * h * dh];
        kernels::attn_context_t(&scores, &v, &mut ctx_t, b, t, h, dh);
        for bi in 0..b {
            for hi in 0..h {
                for i in 0..t {
                    for d in 0..dh {
                        let (mut want, mut want_t) = (0.0f32, 0.0f32);
                        for j in 0..t {
                            want += scores[((bi * h + hi) * t + i) * t + j] * v[idx(bi, j, hi, d)];
                            want_t += scores[((bi * h + hi) * t + j) * t + i] * v[idx(bi, j, hi, d)];
                        }
                        prop_assert!((ctx[idx(bi, i, hi, d)] - want).abs() < 1e-3);
                        prop_assert!((ctx_t[idx(bi, i, hi, d)] - want_t).abs() < 1e-3);
                    }
                }
            }
        }
    }

    #[test]
    fn fused_attention_matches_classic_composition(b in 1usize..4, ti in 0usize..TDIMS.len(), h in 1usize..4, dhi in 0usize..5, scale in 0.1f32..2.0, seed in 0u64..500) {
        // The fused streaming-softmax tile vs the unfused three-kernel
        // chain on the same strided [B, T, H, dh] views. Equality is
        // within epsilon, never bitwise: the online softmax reorders
        // the IEEE reduction (that caveat is the documented contract).
        let t = TDIMS[ti];
        let dh = [1usize, 2, 5, 7, 16][dhi];
        let q = rand_vec(b * t * h * dh, seed);
        let k = rand_vec(b * t * h * dh, seed ^ 21);
        let v = rand_vec(b * t * h * dh, seed ^ 22);

        let (want, weights) = classic_attention(&q, &k, &v, scale, b, t, h, dh);
        let mut got = vec![0.0; b * t * h * dh];
        let mut stats = vec![0.0; b * h * t * kernels::FUSED_STATS_PER_ROW];
        kernels::attn_fused_fwd(&q, &k, &v, scale, &mut got, Some(&mut stats), b, t, h, dh);
        assert_close(&got, &want, t + dh, "fused_fwd")?;
        for pair in stats.chunks(2) {
            prop_assert!(pair[0].is_finite() && pair[1] >= 1.0, "bad stats {pair:?}");
        }

        // Backward: fused recompute vs grads composed from the classic
        // chain's kernels.
        let g = rand_vec(b * t * h * dh, seed ^ 23);
        let (mut gq, mut gk, mut gv) = (
            vec![0.0; b * t * h * dh],
            vec![0.0; b * t * h * dh],
            vec![0.0; b * t * h * dh],
        );
        kernels::attn_fused_bwd(
            &q, &k, &v, &g, &got, &stats, scale, &mut gq, &mut gk, &mut gv, b, t, h, dh,
        );
        let mut gv_want = vec![0.0; b * t * h * dh];
        kernels::attn_context_t(&weights, &g, &mut gv_want, b, t, h, dh);
        let mut gw = vec![0.0; b * h * t * t];
        kernels::attn_scores(&g, &v, &mut gw, b, t, h, dh);
        let mut gs = vec![0.0; b * h * t * t];
        kernels::softmax_bwd(&weights, &gw, scale, t, &mut gs);
        let mut gq_want = vec![0.0; b * t * h * dh];
        kernels::attn_context(&gs, &k, &mut gq_want, b, t, h, dh);
        let mut gk_want = vec![0.0; b * t * h * dh];
        kernels::attn_context_t(&gs, &q, &mut gk_want, b, t, h, dh);
        assert_close(&gq, &gq_want, t + dh, "fused_gq")?;
        assert_close(&gk, &gk_want, t + dh, "fused_gk")?;
        assert_close(&gv, &gv_want, t + dh, "fused_gv")?;
    }

    #[test]
    fn scaled_softmax_fwd_bwd_are_consistent(rows in 1usize..5, d in 1usize..17, scale in 0.1f32..2.0, seed in 0u64..500) {
        let x = rand_vec(rows * d, seed);
        let mut y = vec![0.0; rows * d];
        kernels::scaled_softmax_fwd(&x, scale, d, &mut y);
        for row in y.chunks(d) {
            let s: f32 = row.iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-4);
        }
        // Backward against the analytic Jacobian-vector product.
        let g = rand_vec(rows * d, seed ^ 11);
        let mut gx = vec![0.0; rows * d];
        kernels::softmax_bwd(&y, &g, scale, d, &mut gx);
        for r in 0..rows {
            let ys = &y[r * d..(r + 1) * d];
            let gs = &g[r * d..(r + 1) * d];
            let dot: f32 = ys.iter().zip(gs).map(|(a, b)| a * b).sum();
            for j in 0..d {
                let want = scale * ys[j] * (gs[j] - dot);
                prop_assert!((gx[r * d + j] - want).abs() < 1e-4);
            }
        }
    }
}
