//! Property-based tests: the autodiff engine against randomized shapes,
//! values, and op compositions.

use ntt_tensor::{grad_check, kernels, shape, Param, Tape, Tensor};
use proptest::prelude::*;

fn finite_vec(n: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-3.0f32..3.0, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn matmul_matches_naive(m in 1usize..6, k in 1usize..6, n in 1usize..6, seed in 0u64..1000) {
        let a = Tensor::randn(&[m, k], seed);
        let b = Tensor::randn(&[k, n], seed ^ 1);
        let mut c = vec![0.0f32; m * n];
        kernels::gemm_nn(a.data(), b.data(), &mut c, m, k, n);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += a.at(&[i, p]) * b.at(&[p, j]);
                }
                prop_assert!((c[i * n + j] - acc).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn transpose_last2_is_involutive(b in 1usize..4, m in 1usize..5, n in 1usize..5, seed in 0u64..1000) {
        let t = Tensor::randn(&[b, m, n], seed);
        prop_assert_eq!(t.transpose_last2().transpose_last2(), t);
    }

    #[test]
    fn softmax_rows_are_distributions(rows in 1usize..6, d in 1usize..8, vals_seed in 0u64..1000) {
        let t = Tape::new();
        let x = t.input(Tensor::randn(&[rows, d], vals_seed).map(|v| v * 5.0));
        let y = x.softmax_last().value();
        for row in y.data().chunks(d) {
            let s: f32 = row.iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|&p| (0.0..=1.0 + 1e-6).contains(&p)));
        }
    }

    #[test]
    fn slice_concat_axis1_roundtrip(b in 1usize..3, t1 in 1usize..5, t2 in 1usize..5, d in 1usize..4, seed in 0u64..1000) {
        let tape = Tape::new();
        let x = tape.input(Tensor::randn(&[b, t1 + t2, d], seed));
        let lo = x.slice_axis1(0, t1);
        let hi = x.slice_axis1(t1, t2);
        let back = ntt_tensor::Var::concat_axis1(&[lo, hi]);
        prop_assert_eq!(back.value(), x.value());
    }

    #[test]
    fn reshape_preserves_sum(dims in proptest::collection::vec(1usize..5, 1..4), seed in 0u64..1000) {
        let n: usize = dims.iter().product();
        let t = Tensor::randn(&[n], seed);
        let r = t.reshape(&dims);
        prop_assert!((t.sum() - r.sum()).abs() < 1e-3);
    }

    #[test]
    fn broadcast_kind_is_consistent_with_add(b_dims in 1usize..4, t_dims in 1usize..4, d in 1usize..4) {
        // [B,T,D] + [D] and [B,T,D] + [T,D] are the supported broadcasts.
        prop_assert_eq!(shape::broadcast_kind(&[b_dims, t_dims, d], &[d]),
            Some(if d == d { shape::Broadcast::Inner } else { unreachable!() }));
        let k = shape::broadcast_kind(&[b_dims, t_dims, d], &[t_dims, d]);
        prop_assert!(k == Some(shape::Broadcast::Leading) || k == Some(shape::Broadcast::Same));
    }

    #[test]
    fn linear_layer_gradcheck_random_shapes(m in 1usize..4, k in 2usize..5, n in 1usize..4, seed in 0u64..500) {
        let w = Param::new("w", Tensor::randn(&[k, n], seed).map(|x| x * 0.5));
        let x = Tensor::randn(&[m, k], seed ^ 7);
        let t = Tensor::randn(&[m, n], seed ^ 9);
        let report = grad_check::check_param_grad(&w, 1e-2, |tape| {
            tape.input(x.clone()).matmul(tape.param(&w)).mse_loss(&t)
        });
        prop_assert!(report.passes(3e-2), "{report:?}");
    }

    #[test]
    fn mse_loss_is_nonnegative_and_zero_iff_equal(vals in finite_vec(6)) {
        let tape = Tape::new();
        let x = Tensor::from_vec(vals.clone(), &[6]);
        let v = tape.input(x.clone());
        prop_assert_eq!(v.mse_loss(&x).value().item(), 0.0);
        let shifted = x.map(|a| a + 1.0);
        prop_assert!(v.mse_loss(&shifted).value().item() > 0.99);
    }

    #[test]
    fn backward_accumulates_linearly(seed in 0u64..1000) {
        // d/dw of (k * loss) == k * d/dw loss
        let w = Param::new("w", Tensor::randn(&[3], seed));
        let t = Tensor::randn(&[3], seed ^ 3);
        let grad_of = |k: f32| {
            w.zero_grad();
            let tape = Tape::new();
            let loss = tape.param(&w).mse_loss(&t).scale(k);
            tape.backward(loss);
            w.grad()
        };
        let g1 = grad_of(1.0);
        let g2 = grad_of(2.0);
        prop_assert!(g2.allclose(&g1.map(|x| x * 2.0), 1e-4));
    }
}
