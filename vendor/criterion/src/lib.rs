//! Offline stand-in for the subset of the `criterion` API this
//! workspace uses: `criterion_group!`/`criterion_main!`, benchmark
//! groups with `sample_size`/`throughput`, `bench_function`,
//! `bench_with_input`, and `Bencher::iter`.
//!
//! Measurement is intentionally simple — a short warm-up, then
//! `sample_size` timed samples of an adaptively chosen iteration batch —
//! and results are printed as a plain text table (median, min, max, and
//! derived throughput). No statistics, plots, or baselines.
//!
//! Like upstream criterion, passing `--quick` (or setting
//! `NTT_BENCH_QUICK`) trades precision for speed: fewer samples and a
//! smaller per-sample time target, for CI smoke runs.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// True when the binary was invoked with `--quick` (as `cargo bench ...
/// -- --quick` forwards it) or `NTT_BENCH_QUICK` is set.
fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick") || std::env::var_os("NTT_BENCH_QUICK").is_some()
}

/// Top-level benchmark driver (upstream: configuration + report state).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\n== group: {name} ==");
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size: 20,
            throughput: None,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        run_one(&id.to_string(), 20, None, &mut f);
    }
}

/// Throughput unit attached to a group (per-iteration work).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A named set of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            self.throughput,
            &mut f,
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id.0),
            self.sample_size,
            self.throughput,
            &mut |b| f(b, input),
        );
        self
    }

    pub fn finish(&mut self) {}
}

/// A benchmark identifier (upstream: function + parameter pair).
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Passed to the benchmark closure; `iter` runs and times the payload.
pub struct Bencher {
    sample_size: usize,
    /// (median, min, max) per-iteration nanoseconds, filled by `iter`.
    result: Option<(f64, f64, f64)>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + batch size estimation: aim for >= 1 ms per sample
        // (0.2 ms in quick mode).
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(50));
        let target = if quick_mode() {
            Duration::from_micros(200)
        } else {
            Duration::from_millis(1)
        };
        let batch = (target.as_nanos() / once.as_nanos()).clamp(1, 10_000) as usize;

        let mut per_iter_ns = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            per_iter_ns.push(start.elapsed().as_nanos() as f64 / batch as f64);
        }
        per_iter_ns.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter_ns[per_iter_ns.len() / 2];
        self.result = Some((median, per_iter_ns[0], per_iter_ns[per_iter_ns.len() - 1]));
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    let mut b = Bencher {
        sample_size: if quick_mode() {
            sample_size.min(3)
        } else {
            sample_size
        },
        result: None,
    };
    f(&mut b);
    match b.result {
        Some((median, min, max)) => {
            let rate = match throughput {
                Some(Throughput::Elements(n)) => {
                    format!("  {:>10.3} Melem/s", n as f64 / median * 1e3)
                }
                Some(Throughput::Bytes(n)) => {
                    format!(
                        "  {:>10.3} MiB/s",
                        n as f64 / median * 1e9 / (1 << 20) as f64 / 1e6
                    )
                }
                None => String::new(),
            };
            eprintln!(
                "{label:<40} median {:>12}  [min {}, max {}]{rate}",
                fmt_ns(median),
                fmt_ns(min),
                fmt_ns(max)
            );
        }
        None => eprintln!("{label:<40} (no measurement: closure never called iter)"),
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// `criterion_group!(name, target_fn, ...)` — a runner calling each
/// target with a fresh [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                {
                    let mut c = $crate::Criterion::default();
                    $target(&mut c);
                }
            )+
        }
    };
}

/// `criterion_main!(group, ...)` — the bench binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes `--bench`; `--quick` (see [`quick_mode`])
            // is honored, everything else is ignored.
            $( $group(); )+
        }
    };
}
