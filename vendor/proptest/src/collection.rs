//! Collection strategies (mirrors `proptest::collection`).

use crate::{Strategy, TestRng};

/// Sizes accepted by [`vec`]: a fixed `usize` or a `Range<usize>`.
pub trait IntoSizeRange {
    /// Inclusive lower bound and exclusive upper bound.
    fn bounds(&self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self + 1)
    }
}

impl IntoSizeRange for core::ops::Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty size range");
        (self.start, self.end)
    }
}

impl IntoSizeRange for core::ops::RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start() <= self.end(), "empty size range");
        (*self.start(), *self.end() + 1)
    }
}

/// `vec(element_strategy, size)` — a vector whose length is drawn from
/// `size` and whose elements are drawn from `element_strategy`.
pub fn vec<S: Strategy, Z: IntoSizeRange>(element: S, size: Z) -> VecStrategy<S> {
    let (min, max) = size.bounds();
    VecStrategy { element, min, max }
}

pub struct VecStrategy<S> {
    element: S,
    min: usize,
    max: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.max - self.min) as u64;
        let len = self.min
            + if span > 1 {
                rng.below(span) as usize
            } else {
                0
            };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
