//! Offline stand-in for the subset of the `proptest` API this workspace
//! uses: the `proptest!` macro, range and `collection::vec` strategies,
//! `any::<T>()`, `prop_assert*`/`prop_assume!`, and `ProptestConfig`.
//!
//! Differences from the real crate, deliberate for an offline build:
//! * case generation is **deterministic** (fixed per-case seeds), so a
//!   failure reproduces on every run without a persistence file;
//! * there is **no shrinking** — the failing inputs are printed as-is;
//! * strategies are plain samplers (`Strategy::generate`), not the
//!   lazy value trees of upstream proptest.

pub mod collection;

/// Re-exports matching `proptest::prelude::*` as used in this repo.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Per-test configuration (mirrors `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject(String),
    /// `prop_assert*` failed; the test fails.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Deterministic per-case generator (SplitMix64 stream).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The generator for case number `case` — stable across runs, so
    /// failures are reproducible without a regression file.
    pub fn for_case(case: u64) -> Self {
        TestRng {
            state: case.wrapping_mul(0x9E3779B97F4A7C15) ^ 0x5DEECE66D,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// A value generator (upstream: a strategy producing value trees; here:
/// a plain deterministic sampler).
pub trait Strategy {
    type Value: std::fmt::Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}
float_strategy!(f32, f64);

/// `any::<T>()` — the full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Marker struct returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: std::fmt::Debug + Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, i8, i16, i32, i64, usize);

/// The harness macro. Supports the forms used in this repository:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     #[test]
///     fn name(a in 0u64..10, v in proptest::collection::vec(0f32..1.0, 4)) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $( $(#[$attr:meta])* fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut __rng = $crate::TestRng::for_case(case as u64);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                    let __inputs = {
                        let mut s = String::new();
                        $(s.push_str(&format!(concat!(stringify!($arg), " = {:?}, "), &$arg));)*
                        s
                    };
                    let __result: ::std::result::Result<(), $crate::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match __result {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest case #{case} failed: {msg}\n  inputs: {}",
                                __inputs
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, fmt, ...)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `prop_assert_eq!(a, b)` with optional message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (va, vb) = (&$a, &$b);
        $crate::prop_assert!(
            va == vb,
            "assertion failed: {} == {} ({:?} vs {:?})",
            stringify!($a), stringify!($b), va, vb
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (va, vb) = (&$a, &$b);
        $crate::prop_assert!(va == vb, $($fmt)*);
    }};
}

/// `prop_assert_ne!(a, b)` with optional message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (va, vb) = (&$a, &$b);
        $crate::prop_assert!(
            va != vb,
            "assertion failed: {} != {} (both {:?})",
            stringify!($a), stringify!($b), va
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (va, vb) = (&$a, &$b);
        $crate::prop_assert!(va != vb, $($fmt)*);
    }};
}

/// `prop_assume!(cond)` — skip the case when the precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}
