//! Sequence helpers (mirrors `rand::seq`).

use crate::{RngCore, SampleRange};

/// Shuffling and random selection on slices.
pub trait SliceRandom {
    type Item;

    /// Fisher–Yates shuffle, deterministic in the generator state.
    fn shuffle<R: RngCore>(&mut self, rng: &mut R);

    /// A uniformly chosen element, or `None` if empty.
    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (0..=i).sample_single(rng);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[(0..self.len()).sample_single(rng)])
        }
    }
}
