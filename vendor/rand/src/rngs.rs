//! Named generator types (mirrors `rand::rngs`).

use crate::{splitmix64, RngCore, SeedableRng};

/// The workspace's standard deterministic generator: xoshiro256++.
///
/// Not the upstream `StdRng` (ChaCha12); sequences differ from the real
/// `rand` crate but are stable across platforms and releases of this
/// repository, which is the property the simulator and trainers need.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
        }
        if s == [0; 4] {
            // xoshiro's all-zero state is a fixed point; remap it.
            return Self::seed_from_u64(0);
        }
        StdRng { s }
    }

    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}
