//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: `StdRng`, `SeedableRng::seed_from_u64`, `Rng::{gen,
//! gen_range, gen_bool}`, and `seq::SliceRandom::shuffle`.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate keeps the workspace self-contained. The generator is
//! xoshiro256++ seeded through SplitMix64 — not the upstream ChaCha12,
//! so *sequences differ from the real crate*, but every consumer in
//! this repository only requires seed-determinism, never a specific
//! stream. All methods are deterministic functions of the seed.

pub mod rngs;
pub mod seq;

pub use rngs::StdRng;

/// SplitMix64 step — used for seeding and as a general u64 mixer.
#[inline]
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Seedable generators (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    type Seed;
    fn from_seed(seed: Self::Seed) -> Self;
    fn seed_from_u64(state: u64) -> Self;
}

/// Raw u64 source (mirrors `rand_core::RngCore`, trimmed).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types samplable uniformly from the full "standard" domain
/// (integers: all values; floats: `[0, 1)`; bool: fair coin).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// 53 uniform mantissa bits in `[0, 1)`.
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// 24 uniform mantissa bits in `[0, 1)`.
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges a value can be drawn from (mirrors `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Widening multiply maps next_u64 onto the span without
                // modulo bias worth caring about at these span sizes.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as $t;
                self.start.wrapping_add(hi)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (hi as u128) - (lo as u128) + 1;
                let draw = ((rng.next_u64() as u128 * span) >> 64) as $t;
                lo.wrapping_add(draw)
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}
float_range!(f32, f64);

/// The user-facing sampling interface (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn floats_are_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = r.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = r.gen_range(-2.0f32..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i = r.gen_range(0usize..1);
            assert_eq!(i, 0);
        }
    }

    #[test]
    fn uniform_mean_is_close_to_half() {
        let mut r = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mean = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_seeded_permutation() {
        use crate::seq::SliceRandom;
        let base: Vec<u32> = (0..50).collect();
        let mut a = base.clone();
        let mut b = base.clone();
        a.shuffle(&mut StdRng::seed_from_u64(9));
        b.shuffle(&mut StdRng::seed_from_u64(9));
        assert_eq!(a, b, "same seed, same order");
        assert_ne!(a, base, "50 elements virtually never shuffle to identity");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, base, "shuffle must be a permutation");
    }
}
